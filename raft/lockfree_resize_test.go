package raft

import (
	"testing"

	"raftlib/internal/trace"
)

// TestLockFreeLinksResizeUnderLoad is the end-to-end proof of the epoch
// swap: lock-free SPSC links start at capacity 1, the monitor observes
// the blocked producer and publishes grows, and the producer installs
// them mid-stream — all without losing or reordering a single element.
func TestLockFreeLinksResizeUnderLoad(t *testing.T) {
	m := NewMap()
	sink := newCollect()
	work := newWork()
	if _, err := m.Link(newGen(20_000), work, Cap(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink, Cap(1)); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithLockFreeQueues(), WithDynamicResize(true), WithTrace(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.values()) != 20_000 {
		t.Fatalf("received %d, want 20000", len(sink.values()))
	}
	var resizes uint64
	for _, l := range rep.Links {
		if l.Ring != "spsc" {
			t.Fatalf("link %s ring = %q, want spsc under WithLockFreeQueues", l.Name, l.Ring)
		}
		resizes += l.Resizes
	}
	if resizes == 0 {
		t.Fatal("expected the monitor to resize a 1-element lock-free queue under load")
	}
	grows := 0
	for _, e := range rep.MonitorEvents {
		if e.Kind == "grow" {
			grows++
		}
	}
	if grows == 0 {
		t.Fatalf("no grow decision in monitor events: %+v", rep.MonitorEvents)
	}
	// The decisions must also be visible on the trace bus.
	traced := 0
	for _, e := range rep.Trace.Events() {
		if e.Kind == trace.QueueGrow {
			traced++
		}
	}
	if traced == 0 {
		t.Fatal("no QueueGrow event reached the trace recorder")
	}
}

// TestAsLockFreePerLink checks the per-link opt-in: only the marked
// stream runs on the SPSC ring, and the report's ring column says so.
func TestAsLockFreePerLink(t *testing.T) {
	m := NewMap()
	sink := newCollect()
	work := newWork()
	l1, err := m.Link(newGen(5_000), work, AsLockFree(), Cap(2))
	if err != nil {
		t.Fatal(err)
	}
	if !l1.LockFree() {
		t.Fatal("LockFree() accessor should reflect AsLockFree")
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithDynamicResize(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.values()) != 5_000 {
		t.Fatalf("received %d, want 5000", len(sink.values()))
	}
	rings := map[string]string{}
	for _, l := range rep.Links {
		rings[l.Name] = l.Ring
	}
	spsc, mutex := 0, 0
	for _, r := range rings {
		switch r {
		case "spsc":
			spsc++
		case "mutex":
			mutex++
		default:
			t.Fatalf("unknown ring kind %q in %v", r, rings)
		}
	}
	if spsc != 1 || mutex != 1 {
		t.Fatalf("ring kinds = %v, want exactly one spsc and one mutex", rings)
	}
}
