package raft

import (
	"errors"
	"fmt"

	"raftlib/internal/core"
	"raftlib/internal/resilience"
)

// Sentinel errors for the public API. Every error the library returns (or
// panics with, for construction-time misuse) wraps one of these, so callers
// classify failures with errors.Is instead of string matching:
//
//	if _, err := m.Link(a, b); errors.Is(err, raft.ErrTypeMismatch) { ... }
//
// Resilience sentinels (ErrKernelPanicked, ErrRetriesExhausted,
// ErrCheckpointFailed) are aliases of their internal definitions — the same
// pattern as ErrClosed aliasing the ringbuffer's sentinel — so errors
// produced deep in the runtime satisfy errors.Is against the public names.
var (
	// ErrKernelPanicked marks an error produced by recovering a kernel
	// panic: the scheduler's conversion when no supervisor is installed, or
	// the supervisor's exhaustion escalation when one is.
	ErrKernelPanicked = core.ErrKernelPanicked

	// ErrRetriesExhausted marks a supervised kernel that kept panicking
	// past its restart budget and was escalated as a permanent failure.
	ErrRetriesExhausted = resilience.ErrRetriesExhausted

	// ErrCheckpointFailed wraps kernel snapshot or restore failures.
	ErrCheckpointFailed = resilience.ErrCheckpointFailed

	// ErrBridgeDown marks a remote stream (oar bridge) whose connection
	// stayed down past the healing policy's tolerance.
	ErrBridgeDown = errors.New("raft: bridge down")

	// ErrPortNotFound marks a lookup of a port name the kernel never
	// declared.
	ErrPortNotFound = errors.New("raft: port not found")

	// ErrPortInUse marks a Link against a port that is already linked, or a
	// duplicate port declaration.
	ErrPortInUse = errors.New("raft: port already in use")

	// ErrPortUnbound marks a stream operation on a port before Map.Exe
	// allocated its stream.
	ErrPortUnbound = errors.New("raft: port not bound")

	// ErrTypeMismatch marks linking or accessing a port with the wrong
	// element type — the library's stand-in for the C++ template compile
	// error.
	ErrTypeMismatch = errors.New("raft: element type mismatch")

	// ErrAlreadyExecuted marks a second Exe on the same Map.
	ErrAlreadyExecuted = errors.New("raft: map already executed")
)

// misuse builds the panic value for construction-time API misuse: an error
// whose message reads naturally and which wraps the given sentinel. Misuse
// inside a running kernel is recovered by the scheduler (or supervisor) and
// surfaced from Exe as an error satisfying errors.Is for both
// ErrKernelPanicked and the sentinel.
func misuse(sentinel error, format string, args ...any) error {
	return fmt.Errorf("%s [%w]", fmt.Sprintf("raft: "+format, args...), sentinel)
}
