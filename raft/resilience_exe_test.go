package raft

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// flakyDouble doubles each input but panics on chosen input values. It
// checkpoints its processed-count so restarts are observable.
type flakyDouble struct {
	KernelBase
	panicOn   map[int64]bool
	processed uint64
}

func newFlakyDouble(panicOn ...int64) *flakyDouble {
	k := &flakyDouble{panicOn: map[int64]bool{}}
	for _, v := range panicOn {
		k.panicOn[v] = true
	}
	AddInput[int64](k, "in")
	AddOutput[int64](k, "out")
	return k
}

func (f *flakyDouble) Run() Status {
	v, err := Pop[int64](f.In("in"))
	if err != nil {
		return Stop
	}
	if f.panicOn[v] {
		delete(f.panicOn, v) // succeed on retry: a transient fault
		panic(fmt.Sprintf("flaky: cannot handle %d", v))
	}
	f.processed++
	if err := Push(f.Out("out"), 2*v); err != nil {
		return Stop
	}
	return Proceed
}

func (f *flakyDouble) Snapshot() ([]byte, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], f.processed)
	return b[:], nil
}

func (f *flakyDouble) Restore(snap []byte) error {
	if len(snap) != 8 {
		return fmt.Errorf("bad snapshot length %d", len(snap))
	}
	f.processed = binary.LittleEndian.Uint64(snap)
	return nil
}

func TestSupervisionRecoversKernelPanicLosslessly(t *testing.T) {
	// Injected kills fire at the top of Run, before the kernel pops any
	// input, so a supervised run must deliver every element exactly once —
	// the lossless-recovery property the chaos tests depend on.
	m := NewMap()
	flaky := newFlakyDouble() // no intrinsic panics; the injector provides them
	sink := newCollect()
	if _, err := m.Link(newGen(50), flaky); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(flaky, sink); err != nil {
		t.Fatal(err)
	}

	inj := NewFaultInjector()
	inj.KillKernel("flakyDouble", 10) // 10th invocation dies pre-pop
	inj.KillKernel("flakyDouble", 25)

	rep, err := m.Exe(
		WithSupervision(SupervisionPolicy{InitialBackoff: time.Microsecond}),
		WithFaultInjection(inj),
	)
	if err != nil {
		t.Fatalf("Exe: %v", err)
	}
	got := sink.values()
	if len(got) != 50 {
		t.Fatalf("collected %d values, want 50 (injected kills must be lossless)", len(got))
	}
	for i, v := range got {
		if v != int64(2*i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, 2*i)
		}
	}
	if inj.Fired("kill") != 2 {
		t.Fatalf("kills fired = %d, want 2", inj.Fired("kill"))
	}

	// Report surfaces the restarts.
	var restarts uint64
	for _, k := range rep.Kernels {
		if strings.HasPrefix(k.Name, "flakyDouble") {
			restarts = k.Restarts
		}
	}
	if restarts != 2 {
		t.Fatalf("KernelReport.Restarts = %d, want 2", restarts)
	}
	if len(rep.Recoveries) != 2 {
		t.Fatalf("Report.Recoveries has %d events, want 2", len(rep.Recoveries))
	}
	if !strings.Contains(rep.String(), "recoveries") {
		t.Fatal("report text missing recoveries section")
	}
}

func TestSupervisionKernelOwnPanicsRecovered(t *testing.T) {
	m := NewMap()
	flaky := newFlakyDouble(3, 11) // panics once each on inputs 3 and 11
	sink := newCollect()
	if _, err := m.Link(newGen(20), flaky); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(flaky, sink); err != nil {
		t.Fatal(err)
	}
	_, err := m.Exe(WithSupervision(SupervisionPolicy{InitialBackoff: time.Microsecond}))
	if err != nil {
		t.Fatalf("Exe: %v", err)
	}
	// Values 3 and 11 were popped before the panic, so they are consumed;
	// supervised restart continues with the next element. 18 survivors.
	got := sink.values()
	if len(got) != 18 {
		t.Fatalf("collected %d values, want 18", len(got))
	}
	for _, v := range got {
		if v == 6 || v == 22 {
			t.Fatalf("value %d should have been lost with its panicking input", v)
		}
	}
}

func TestSupervisionExhaustionEscalates(t *testing.T) {
	m := NewMap()
	dead := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
		panic("permanently broken")
	})
	if _, err := m.Link(newGen(10), dead); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(dead, newCollect()); err != nil {
		t.Fatal(err)
	}
	_, err := m.Exe(WithSupervision(SupervisionPolicy{MaxRestarts: 2, InitialBackoff: time.Microsecond}))
	if err == nil {
		t.Fatal("Exe succeeded despite a permanently failing kernel")
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("err %v does not wrap ErrRetriesExhausted", err)
	}
	if !errors.Is(err, ErrKernelPanicked) {
		t.Errorf("err %v does not wrap ErrKernelPanicked", err)
	}
}

func TestCheckpointStoreCrossExecutionResume(t *testing.T) {
	dir := t.TempDir()

	run := func(kills ...uint64) uint64 {
		m := NewMap()
		flaky := newFlakyDouble()
		flaky.SetName("dbl")
		sink := newCollect()
		if _, err := m.Link(newGen(30), flaky); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Link(flaky, sink); err != nil {
			t.Fatal(err)
		}
		opts := []Option{
			WithSupervision(SupervisionPolicy{InitialBackoff: time.Microsecond}),
			WithCheckpoints(dir),
		}
		if len(kills) > 0 {
			inj := NewFaultInjector()
			for _, at := range kills {
				inj.KillKernel("dbl", at)
			}
			opts = append(opts, WithFaultInjection(inj))
		}
		if _, err := m.Exe(opts...); err != nil {
			t.Fatal(err)
		}
		return flaky.processed
	}

	if got := run(5); got != 30 {
		t.Fatalf("first run processed %d, want 30", got)
	}
	// A second execution over the same checkpoint directory resumes the
	// persisted counter: Init restores processed=30, then 30 more inputs.
	if got := run(); got != 60 {
		t.Fatalf("resumed run processed %d, want 60 (cross-execution resume)", got)
	}
}

func TestUnsupervisedFaultInjectionAborts(t *testing.T) {
	m := NewMap()
	dbl := newFlakyDouble()
	if _, err := m.Link(newGen(10), dbl); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(dbl, newCollect()); err != nil {
		t.Fatal(err)
	}
	inj := NewFaultInjector()
	inj.KillKernel("flakyDouble", 3)
	_, err := m.Exe(WithFaultInjection(inj))
	if err == nil {
		t.Fatal("Exe succeeded despite unsupervised injected kill")
	}
	if !errors.Is(err, ErrKernelPanicked) {
		t.Errorf("err %v does not wrap ErrKernelPanicked", err)
	}
}

func TestObserverSeesRestarts(t *testing.T) {
	m := NewMap()
	flaky := newFlakyDouble(2)
	sink := newCollect()
	if _, err := m.Link(newGen(2000), flaky); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(flaky, sink); err != nil {
		t.Fatal(err)
	}
	var sawRestart bool
	_, err := m.Exe(
		WithSupervision(SupervisionPolicy{InitialBackoff: time.Microsecond}),
		WithObserver(time.Millisecond, func(ls LiveStats) {
			for _, k := range ls.Kernels {
				if k.Restarts > 0 {
					sawRestart = true
				}
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !sawRestart {
		t.Fatal("observer never saw a nonzero LiveKernel.Restarts")
	}
}
