package raft

import (
	"fmt"

	"raftlib/internal/qmodel"
)

// Advice is the analytic read-out of a completed execution: the paper's
// §4.1 loop of feeding run-time measurements into a flow model to find the
// bottleneck, predict attainable throughput, and pick buffer sizes
// ("Queueing models are often the fastest way to estimate an approximate
// queue size, however service rates and their distributions must be
// determined, which is hard to do during execution" — the runtime's
// ServiceTimers determine exactly those rates).
type Advice struct {
	// Bottleneck is the name of the kernel limiting throughput.
	Bottleneck string
	// MaxSourceRate is the predicted sustainable aggregate source rate
	// (kernel invocations per second).
	MaxSourceRate float64
	// Utilization maps kernel name to predicted utilization at the
	// bottleneck-limited operating point.
	Utilization map[string]float64
	// ReplicaSuggestion maps a kernel name to the replica count that would
	// equalize it with the next-binding constraint (1 = keep as is).
	ReplicaSuggestion map[string]int
	// BufferSuggestion maps link name to an M/M/1-derived capacity meeting
	// a 0.1% blocking target.
	BufferSuggestion map[string]int
}

// Analyze builds the flow model of an executed Map from its Report and
// returns bottleneck analysis plus sizing suggestions. It must be called
// with the Report produced by this Map's Exe.
func Analyze(m *Map, rep *Report) (*Advice, error) {
	if len(rep.Kernels) != len(m.kernels) || len(rep.Links) != len(m.links) {
		return nil, fmt.Errorf("raft: report does not match map (%d/%d kernels, %d/%d links)",
			len(rep.Kernels), len(m.kernels), len(rep.Links), len(m.links))
	}
	elapsed := rep.Elapsed.Seconds()
	if elapsed <= 0 {
		return nil, fmt.Errorf("raft: report has no elapsed time")
	}

	// Per-kernel traffic from per-link push counts (a link's pushes were
	// produced by its Src and consumed by its Dst), and per-kernel blocked
	// time (a link's write-block time was suffered by its Src, read-block
	// time by its Dst). Blocked time must be excluded from service time:
	// a Run invocation that waits on a port is idle, not serving, and
	// counting the wait would make every kernel look as slow as the
	// bottleneck.
	inflow := make([]float64, len(m.kernels))
	outflow := make([]float64, len(m.kernels))
	blockedNs := make([]float64, len(m.kernels))
	for i, l := range m.links {
		n := float64(rep.Links[i].Pushes)
		src := m.index[l.Src.kernelBase()]
		dst := m.index[l.Dst.kernelBase()]
		outflow[src] += n
		inflow[dst] += n
		blockedNs[src] += float64(rep.Links[i].WriteBlockNs)
		blockedNs[dst] += float64(rep.Links[i].ReadBlockNs)
	}

	net := &qmodel.Network{}
	for i, k := range m.kernels {
		kb := k.kernelBase()
		rate := effectiveRate(rep.Kernels[i], blockedNs[i])
		if rate <= 0 {
			// Virtual or never-scheduled kernels: infinitely fast sources
			// from the model's perspective.
			rate = 1e12
		}
		gain := 1.0
		if inflow[i] > 0 && outflow[i] >= 0 && len(kb.outNames) > 0 {
			gain = outflow[i] / inflow[i]
		}
		net.Kernels = append(net.Kernels, qmodel.KernelModel{
			Name:        rep.Kernels[i].Name,
			ServiceRate: rate,
			Replicas:    1,
			Gain:        gain,
		})
	}
	for i, l := range m.links {
		src := m.index[l.Src.kernelBase()]
		frac := 1.0
		if outflow[src] > 0 {
			frac = float64(rep.Links[i].Pushes) / outflow[src]
		}
		net.Edges = append(net.Edges, qmodel.EdgeModel{
			Src: src, Dst: m.index[l.Dst.kernelBase()], Fraction: frac,
		})
	}

	pred, err := net.Solve()
	if err != nil {
		return nil, err
	}

	adv := &Advice{
		Bottleneck:        net.Kernels[pred.Bottleneck].Name,
		MaxSourceRate:     pred.MaxSourceRate,
		Utilization:       map[string]float64{},
		ReplicaSuggestion: map[string]int{},
		BufferSuggestion:  map[string]int{},
	}
	for i, k := range net.Kernels {
		adv.Utilization[k.Name] = pred.Utilization[i]
		// Erlang C sizing: enough replicas that an element rarely waits at
		// the predicted operating point (the M/M/c refinement of the flow
		// model's capacity view).
		adv.ReplicaSuggestion[k.Name] = qmodel.MinServers(pred.KernelLoad[i], k.ServiceRate, 0.2, 64)
	}
	for i, l := range m.links {
		lambda := float64(rep.Links[i].Pushes) / elapsed
		dst := m.index[l.Dst.kernelBase()]
		mu := effectiveRate(rep.Kernels[dst], blockedNs[dst])
		if lambda <= 0 || mu <= 0 {
			continue
		}
		q := qmodel.MM1{Lambda: lambda, Mu: mu}
		adv.BufferSuggestion[rep.Links[i].Name] = q.SuggestCapacity(1e-3, 1, 1<<16)
	}
	return adv, nil
}

// effectiveRate converts a kernel's measured totals into a pure service
// rate: invocations per second of actual compute time, with port-blocked
// time removed.
func effectiveRate(k KernelReport, blockedNs float64) float64 {
	if k.Runs == 0 {
		return 0
	}
	busy := float64(k.BusyNanos) - blockedNs
	// Floor at 50ns per invocation: a kernel can't be infinitely fast, and
	// measurement jitter can drive the subtraction negative.
	if min := 50 * float64(k.Runs); busy < min {
		busy = min
	}
	return float64(k.Runs) / (busy / 1e9)
}

// String renders the advice.
func (a *Advice) String() string {
	s := fmt.Sprintf("bottleneck: %s (max source rate %.0f/s)\n", a.Bottleneck, a.MaxSourceRate)
	for name, u := range a.Utilization {
		s += fmt.Sprintf("  %-28s util %.2f  replicas -> %d\n", name, u, a.ReplicaSuggestion[name])
	}
	for link, c := range a.BufferSuggestion {
		s += fmt.Sprintf("  %-44s buffer -> %d\n", link, c)
	}
	return s
}
