package raft

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestConvertedLinkNumericCast(t *testing.T) {
	m := NewMap()
	src := NewLambda[int32](0, 1, func(k *LambdaKernel) Status {
		for i := int32(0); i < 100; i++ {
			if err := Push(k.Out("0"), i); err != nil {
				return Stop
			}
		}
		return Stop
	})
	var got []int64
	sink := NewLambda[int64](1, 0, func(k *LambdaKernel) Status {
		v, err := Pop[int64](k.In("0"))
		if err != nil {
			return Stop
		}
		got = append(got, v)
		return Proceed
	})
	l, err := m.Link(src, sink, AllowConvert())
	if err != nil {
		t.Fatal(err)
	}
	if l.Src != src || l.Dst != sink {
		t.Fatal("synthetic link endpoints wrong")
	}
	rep, err := m.Exe()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("received %d values", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	// A converter kernel must appear in the report.
	found := false
	for _, k := range rep.Kernels {
		if strings.HasPrefix(k.Name, "convert") {
			found = true
		}
	}
	if !found {
		t.Fatal("no converter kernel in report")
	}
}

func TestConvertedLinkFloatToInt(t *testing.T) {
	m := NewMap()
	src := NewLambda[float64](0, 1, func(k *LambdaKernel) Status {
		for _, v := range []float64{1.9, 2.1, -3.7} {
			if err := Push(k.Out("0"), v); err != nil {
				return Stop
			}
		}
		return Stop
	})
	var got []int32
	sink := NewLambda[int32](1, 0, func(k *LambdaKernel) Status {
		v, err := Pop[int32](k.In("0"))
		if err != nil {
			return Stop
		}
		got = append(got, v)
		return Proceed
	})
	if _, err := m.Link(src, sink, AllowConvert()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 2, -3} // Go truncation semantics
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestConvertedLinkPreservesSignals(t *testing.T) {
	m := NewMap()
	src := NewLambda[int16](0, 1, func(k *LambdaKernel) Status {
		if err := PushSig(k.Out("0"), int16(7), SigUser); err != nil {
			return Stop
		}
		return Stop
	})
	var gotSig Signal
	sink := NewLambda[int64](1, 0, func(k *LambdaKernel) Status {
		_, s, err := PopSig[int64](k.In("0"))
		if err != nil {
			return Stop
		}
		gotSig = s
		return Proceed
	})
	if _, err := m.Link(src, sink, AllowConvert()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if gotSig != SigUser {
		t.Fatalf("signal lost through conversion: %v", gotSig)
	}
}

func TestMismatchWithoutAllowConvertStillErrors(t *testing.T) {
	m := NewMap()
	src := NewLambda[int32](0, 1, func(k *LambdaKernel) Status { return Stop })
	sink := NewLambda[int64](1, 0, func(k *LambdaKernel) Status { return Stop })
	if _, err := m.Link(src, sink); err == nil {
		t.Fatal("mismatch without AllowConvert must error")
	}
}

func TestConvertUnsupportedTypes(t *testing.T) {
	m := NewMap()
	src := NewLambda[string](0, 1, func(k *LambdaKernel) Status { return Stop })
	sink := NewLambda[int64](1, 0, func(k *LambdaKernel) Status { return Stop })
	if _, err := m.Link(src, sink, AllowConvert()); err == nil {
		t.Fatal("string->int64 conversion must error")
	}
}

func TestAsyncSignalOvertakesBufferedData(t *testing.T) {
	// The producer fills the queue, then posts an async signal; the
	// consumer must see it before consuming the buffered elements.
	m := NewMap()
	sawBefore := false
	consumed := 0
	var srcOut *Port
	src := NewLambda[int64](0, 1, func(k *LambdaKernel) Status {
		srcOut = k.Out("0")
		for i := int64(0); i < 32; i++ {
			if err := Push(srcOut, i); err != nil {
				return Stop
			}
		}
		srcOut.SendAsync(SigUser)
		return Stop
	})
	sink := NewLambda[int64](1, 0, func(k *LambdaKernel) Status {
		in := k.In("0")
		if s, ok := in.RecvAsync(); ok && s == SigUser && consumed < 32 && in.Len() > 0 {
			sawBefore = true
		}
		if _, err := Pop[int64](in); err != nil {
			return Stop
		}
		consumed++
		return Proceed
	})
	if _, err := m.Link(src, sink, Cap(64)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if consumed != 32 {
		t.Fatalf("consumed %d", consumed)
	}
	if !sawBefore {
		t.Fatal("async signal was not visible ahead of buffered data")
	}
}

func TestAsyncSignalPeekAndConsume(t *testing.T) {
	m := NewMap()
	var inspected []Signal
	src := NewLambda[int64](0, 1, func(k *LambdaKernel) Status {
		k.Out("0").SendAsync(SigTerm)
		_ = Push(k.Out("0"), int64(1))
		return Stop
	})
	sink := NewLambda[int64](1, 0, func(k *LambdaKernel) Status {
		in := k.In("0")
		if _, err := Pop[int64](in); err != nil {
			return Stop
		}
		inspected = append(inspected, in.PeekAsync())
		if s, ok := in.RecvAsync(); ok {
			inspected = append(inspected, s)
		}
		inspected = append(inspected, in.PeekAsync()) // consumed: none
		return Proceed
	})
	if _, err := m.Link(src, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if len(inspected) != 3 || inspected[0] != SigTerm || inspected[1] != SigTerm || inspected[2] != SigNone {
		t.Fatalf("inspected = %v", inspected)
	}
}

func TestRecvAsyncOnUnboundPort(t *testing.T) {
	k := NewLambda[int64](1, 0, func(k *LambdaKernel) Status { return Stop })
	if _, ok := k.In("0").RecvAsync(); ok {
		t.Fatal("unbound port cannot hold async signals")
	}
	if k.In("0").PeekAsync() != SigNone {
		t.Fatal("unbound PeekAsync must be none")
	}
}

func TestRaiseAbortsWholeApplication(t *testing.T) {
	m := NewMap()
	// Infinite source: only the exception can stop this app.
	src := NewLambda[int64](0, 1, func(k *LambdaKernel) Status {
		if err := Push(k.Out("0"), int64(1)); err != nil {
			return Stop
		}
		return Proceed
	})
	n := 0
	var mid *LambdaKernel
	mid = NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
		v, err := Pop[int64](k.In("0"))
		if err != nil {
			return Stop
		}
		n++
		if n == 1000 {
			mid.Raise(fmt.Errorf("poison value %d", v))
		}
		if err := Push(k.Out("0"), v); err != nil {
			return Stop
		}
		return Proceed
	})
	sink := NewLambda[int64](1, 0, func(k *LambdaKernel) Status {
		if _, err := Pop[int64](k.In("0")); err != nil {
			return Stop
		}
		return Proceed
	})
	if _, err := m.Link(src, mid); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(mid, sink); err != nil {
		t.Fatal(err)
	}
	_, err := m.Exe()
	if err == nil {
		t.Fatal("raised exception must surface from Exe")
	}
	if !strings.Contains(err.Error(), "poison value") {
		t.Fatalf("err = %v", err)
	}
}

func TestRaiseFirstErrorWins(t *testing.T) {
	m := NewMap()
	src := NewLambda[int64](0, 1, func(k *LambdaKernel) Status {
		k.Raise(errors.New("first"))
		k.Raise(errors.New("second"))
		return Stop
	})
	sink := NewLambda[int64](1, 0, func(k *LambdaKernel) Status {
		if _, err := Pop[int64](k.In("0")); err != nil {
			return Stop
		}
		return Proceed
	})
	if _, err := m.Link(src, sink); err != nil {
		t.Fatal(err)
	}
	_, err := m.Exe()
	if err == nil || !strings.Contains(err.Error(), "first") || strings.Contains(err.Error(), "second") {
		t.Fatalf("err = %v", err)
	}
}

func TestRaiseNilIsNoop(t *testing.T) {
	m := NewMap()
	src := NewLambda[int64](0, 1, func(k *LambdaKernel) Status {
		k.Raise(nil)
		return Stop
	})
	sink := NewLambda[int64](1, 0, func(k *LambdaKernel) Status {
		if _, err := Pop[int64](k.In("0")); err != nil {
			return Stop
		}
		return Proceed
	})
	if _, err := m.Link(src, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatalf("nil raise must not fail the app: %v", err)
	}
}
