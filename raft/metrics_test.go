package raft

import (
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
)

// scrapingObserver polls the metrics endpoint mid-run from the observer
// callback, so the scrape exercises live (still-executing) state.
type scrapingObserver struct {
	addr string
	mu   sync.Mutex
	body string
}

func (s *scrapingObserver) observe(LiveStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.body != "" {
		return
	}
	if b, err := pollMetricsOnce(s.addr); err == nil {
		s.body = b
	}
}

func TestMetricsEndpointDuringRun(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	scraper := &scrapingObserver{addr: ln.Addr().String()}

	m := NewMap()
	work := newWork()
	sink := newCollect()
	if _, err := m.Link(newGen(200000), work); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(
		WithMetricsListener(ln),
		WithTrace(1<<14),
		WithObserver(1_000_000, scraper.observe), // 1ms
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MetricsAddr == "" {
		t.Fatal("report carries no metrics address")
	}

	scraper.mu.Lock()
	body := scraper.body
	scraper.mu.Unlock()
	if body == "" {
		t.Fatal("no scrape landed during the run")
	}
	for _, want := range []string{
		"raft_link_pushes_total{link=",
		"raft_link_occupancy_bucket{link=",
		"le=\"+Inf\"",
		"raft_link_occupancy_count{link=",
		"raft_kernel_runs_total{kernel=",
		"raft_kernel_service_ns_bucket{kernel=",
		"raft_monitor_ticks_total",
		"raft_trace_dropped_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%.2000s", want, body)
		}
	}

	// Endpoint must be down once Exe returns.
	if _, err := pollMetricsOnce(rep.MetricsAddr); err == nil {
		t.Fatal("metrics endpoint still up after Exe returned")
	}
}

func TestReportChromeTrace(t *testing.T) {
	m := NewMap()
	work := newWork()
	sink := newCollect()
	if _, err := m.Link(newGen(500), work); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithTrace(4096))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome JSON: %v", err)
	}
	var spans int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
		case "M":
			if args, ok := ev["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					names[n] = true
				}
			}
		}
	}
	if spans == 0 {
		t.Fatal("no kernel spans in chrome trace")
	}
	for _, want := range []string{"genKernel", "workKernel", "collectKernel"} {
		found := false
		for n := range names {
			if strings.HasPrefix(n, want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("kernel track %q missing (have %v)", want, names)
		}
	}
}

func TestChromeTraceRequiresTrace(t *testing.T) {
	_, rep := runSumApp(t, 10)
	if err := rep.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("expected error without WithTrace")
	}
}

func TestReportOccupancyHistogram(t *testing.T) {
	_, rep := runSumApp(t, 5000)
	var pushes, occCount uint64
	for _, l := range rep.Links {
		pushes += l.Pushes
		for _, n := range l.OccHist {
			occCount += n
		}
		if l.Pushes > 0 && l.OccP99 == 0 {
			t.Fatalf("link %s: pushes=%d but occ p99 = 0", l.Name, l.Pushes)
		}
	}
	if occCount == 0 {
		t.Fatal("no occupancy samples recorded")
	}
	// Element-wise pushes record one occupancy sample each.
	if occCount != pushes {
		t.Fatalf("occupancy samples = %d, pushes = %d", occCount, pushes)
	}
}
