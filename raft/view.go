package raft

import "raftlib/internal/ringbuffer"

// Zero-copy batch views at the port layer.
//
// PopN hands a kernel a copy of each batch; PopView hands it the stream
// queue's own backing array. A kernel that serializes, scans or transforms
// elements can do so directly on ring storage (two contiguous segments when
// the buffered region wraps, with the synchronized signals aligned) and
// then commit consumption with ReleaseView — no element is ever staged
// through a kernel-owned slice. AcquireWriteView is the producer-side
// mirror: decoded or generated batches are materialized straight into the
// queue's free region and published with ReleaseWriteView.
//
// Both built-in queue kinds support views; a custom queue installed via
// ProvideQueue may not, so callers either check HasViews first or use the
// kernels'/movers' built-in PopN fallback. The borrow discipline (one view
// per side, release exactly once, slices invalid after release) is
// documented on the ringbuffer package.

// View is a borrowed read window over stream storage: up to two contiguous
// value segments with their aligned signal segments. A nil signal segment
// means every element in it carries SigNone.
type View[T any] struct {
	Vals  []T
	Sigs  []Signal
	Vals2 []T
	Sigs2 []Signal
}

// Len returns the number of borrowed elements.
func (v View[T]) Len() int { return len(v.Vals) + len(v.Vals2) }

// At returns borrowed element i.
func (v View[T]) At(i int) T {
	if i < len(v.Vals) {
		return v.Vals[i]
	}
	return v.Vals2[i-len(v.Vals)]
}

// SigAt returns the signal aligned with borrowed element i.
func (v View[T]) SigAt(i int) Signal {
	if i < len(v.Vals) {
		if v.Sigs == nil {
			return SigNone
		}
		return v.Sigs[i]
	}
	if v.Sigs2 == nil {
		return SigNone
	}
	return v.Sigs2[i-len(v.Vals)]
}

// WriteView is a borrowed write window over a stream's free region, signals
// pre-cleared to SigNone. Populate a prefix and publish it with
// ReleaseWriteView.
type WriteView[T any] struct {
	Vals  []T
	Sigs  []Signal
	Vals2 []T
	Sigs2 []Signal
}

// Len returns the number of reserved slots.
func (v WriteView[T]) Len() int { return len(v.Vals) + len(v.Vals2) }

// SetAt stores (val, sig) into reserved slot i.
func (v WriteView[T]) SetAt(i int, val T, sig Signal) {
	if i < len(v.Vals) {
		v.Vals[i] = val
		v.Sigs[i] = sig
		return
	}
	v.Vals2[i-len(v.Vals)] = val
	v.Sigs2[i-len(v.Vals)] = sig
}

// CopyIn bulk-copies vals (and sigs, which may be nil = all SigNone) into
// the reserved slots starting at offset off, returning the number copied.
func (v WriteView[T]) CopyIn(off int, vals []T, sigs []Signal) int {
	return ringbuffer.WriteView[T](v).CopyIn(off, vals, sigs)
}

// viewQueue is the borrow/release read surface both built-in queue kinds
// implement (see internal/ringbuffer/view.go).
type viewQueue[T any] interface {
	AcquireView(int) (ringbuffer.View[T], error)
	TryAcquireView(int) (ringbuffer.View[T], error)
	ReleaseView(int)
}

// writeViewQueue is the producer-side mirror.
type writeViewQueue[T any] interface {
	AcquireWriteView(int) (ringbuffer.WriteView[T], error)
	TryAcquireWriteView(int) (ringbuffer.WriteView[T], error)
	ReleaseWriteView(int)
}

// HasViews reports whether the stream attached to the port supports
// zero-copy batch views (true for both built-in queue kinds; false for a
// custom ProvideQueue queue that lacks the surface, where callers fall back
// to PopN/PushN).
func HasViews[T any](p *Port) bool {
	p.mustBeBound()
	_, ok := p.typed.(viewQueue[T])
	return ok
}

// HasWriteViews reports whether the stream attached to the port supports
// producer-side write views.
func HasWriteViews[T any](p *Port) bool {
	p.mustBeBound()
	_, ok := p.typed.(writeViewQueue[T])
	return ok
}

// bestEffortQueue is implemented by both built-in queue kinds; a best-effort
// link's shed policy lives in PushN, so view-based producers route around
// write views there.
type bestEffortQueue interface{ BestEffort() bool }

// isBestEffort reports whether the port's stream runs a best-effort
// overflow policy (false for custom queues that do not expose one).
func isBestEffort(p *Port) bool {
	q, ok := p.typed.(bestEffortQueue)
	return ok && q.BestEffort()
}

// viewOf extracts the view surface, panicking with a descriptive message on
// element-type mismatch or an unsupported queue.
func viewOf[T any](p *Port) viewQueue[T] {
	p.mustBeBound()
	q, ok := p.typed.(viewQueue[T])
	if !ok {
		if _, isT := p.typed.(typedQueue[T]); isT {
			panic(misuse(ErrTypeMismatch, "view access on port %s requires a queue with batch views (check HasViews)", p))
		}
		panic(typeMismatchPanic[T](p))
	}
	return q
}

// writeViewOf is viewOf for the producer side.
func writeViewOf[T any](p *Port) writeViewQueue[T] {
	p.mustBeBound()
	q, ok := p.typed.(writeViewQueue[T])
	if !ok {
		if _, isT := p.typed.(typedQueue[T]); isT {
			panic(misuse(ErrTypeMismatch, "view access on port %s requires a queue with batch views (check HasViews)", p))
		}
		panic(typeMismatchPanic[T](p))
	}
	return q
}

// PopView borrows up to max buffered elements of an input port in place,
// blocking until at least one is available; once the stream is closed and
// drained it returns ErrClosed with an empty view. A non-empty view MUST be
// released exactly once with ReleaseView; its slices alias queue storage
// and are invalid after release.
func PopView[T any](p *Port, max int) (View[T], error) {
	for {
		v, err := viewOf[T](p).AcquireView(max)
		if len(v.Vals) > 0 {
			p.markPop()
		}
		if err == nil || len(v.Vals) > 0 || !p.migrateOnClosed(err) {
			return View[T](v), err
		}
	}
}

// TryPopView is the non-blocking PopView: an empty view with a nil error
// when the stream is empty but open, (empty, ErrClosed) once it is closed
// and drained. An empty view must not be released.
func TryPopView[T any](p *Port, max int) (View[T], error) {
	for {
		v, err := viewOf[T](p).TryAcquireView(max)
		if len(v.Vals) > 0 {
			p.markPop()
		}
		if err == nil || len(v.Vals) > 0 || !p.migrateOnClosed(err) {
			return View[T](v), err
		}
	}
}

// ReleaseView ends the port's outstanding read view, consuming its first n
// elements; the remainder stays buffered for the next PopView.
func ReleaseView[T any](p *Port, n int) {
	viewOf[T](p).ReleaseView(n)
}

// AcquireWriteView reserves up to max free slots of an output port for
// in-place production, blocking until at least one is free. Populate a
// prefix and publish it with ReleaseWriteView; a non-empty view MUST be
// released exactly once.
func AcquireWriteView[T any](p *Port, max int) (WriteView[T], error) {
	v, err := writeViewOf[T](p).AcquireWriteView(max)
	return WriteView[T](v), err
}

// TryAcquireWriteView is the non-blocking AcquireWriteView: an empty view
// with a nil error means no slot is free right now (callers fall back to
// PushN, which also carries the best-effort shed policy).
func TryAcquireWriteView[T any](p *Port, max int) (WriteView[T], error) {
	v, err := writeViewOf[T](p).TryAcquireWriteView(max)
	return WriteView[T](v), err
}

// ReleaseWriteView ends the port's outstanding write view, publishing its
// first n slots downstream; the rest return to the free region.
func ReleaseWriteView[T any](p *Port, n int) {
	writeViewOf[T](p).ReleaseWriteView(n)
	if n > 0 {
		p.markPush(n)
	}
}

// moveView transfers up to max elements src→dst by borrowing the source's
// storage: one AcquireView, one PushN per segment (the only copy on the
// hop), one release. ok is false when either queue lacks the needed surface
// and the caller should fall back to the scratch-buffer mover. Unlike the
// scratch path, a destination failure mid-hop leaves the undelivered
// elements in the source queue.
func moveView[T any](src, dst any, max int, block bool) (n int, err error, ok bool) {
	sv, sok := src.(viewQueue[T])
	db, dok := dst.(bulkQueue[T])
	if !sok || !dok {
		return 0, nil, false
	}
	if max < 1 {
		max = 1
	}
	var v ringbuffer.View[T]
	if block {
		v, err = sv.AcquireView(max)
	} else {
		v, err = sv.TryAcquireView(max)
	}
	if v.Len() == 0 {
		return 0, err, true
	}
	if perr := db.PushN(v.Vals, v.Sigs); perr != nil {
		sv.ReleaseView(0)
		return 0, perr, true
	}
	if len(v.Vals2) > 0 {
		if perr := db.PushN(v.Vals2, v.Sigs2); perr != nil {
			sv.ReleaseView(len(v.Vals)) // the first segment was delivered
			return len(v.Vals), perr, true
		}
	}
	n = v.Len()
	sv.ReleaseView(n)
	return n, err, true
}

// NewBatchLambda builds a 1-in/1-out kernel that processes the stream one
// borrowed batch at a time: fn receives each contiguous segment of the
// input queue's own storage (vals with aligned, always non-nil sigs),
// transforms it in place, and returns how many leading elements to emit
// downstream — len(vals) for a map, fewer for a filter that compacted the
// segment. The emitted prefix is pushed with its (possibly rewritten)
// signals; a filter must carry any dropped element's non-SigNone signal
// onto an emitted element itself, or the signal is lost. batch bounds the
// borrow size (the adaptive batcher's per-link hint, when present,
// overrides it). On queues without view support the kernel falls back to
// PopNSig into kernel-owned scratch — fn's contract is identical.
//
// State captured by fn is subject to the lambda-replication caveat; use
// NewLambdaCloneable with a maker that calls NewBatchLambda for a
// replicable kernel.
func NewBatchLambda[T any](batch int, fn func(vals []T, sigs []Signal) int) *LambdaKernel {
	if batch < 1 {
		batch = 1
	}
	var scratchV []T
	var scratchS []Signal
	l := &LambdaKernel{}
	l.SetName("batch_lambdak")
	AddInput[T](l, "0")
	AddOutput[T](l, "0")
	// sigsFor hands fn a real signal slice even when the view's segment is
	// nil (all SigNone): in-place compaction needs somewhere to move
	// signals, and PushNSig needs alignment either way.
	sigsFor := func(sigs []Signal, n int) []Signal {
		if sigs != nil {
			return sigs[:n]
		}
		if cap(scratchS) < n {
			scratchS = make([]Signal, n)
		}
		s := scratchS[:n]
		for i := range s {
			s[i] = SigNone
		}
		return s
	}
	l.fn = func(k *LambdaKernel) Status {
		in, out := k.In("0"), k.Out("0")
		max := in.BatchHint(batch)
		if max < 1 {
			max = 1
		}
		if HasViews[T](in) {
			v, err := PopView[T](in, max)
			if v.Len() == 0 {
				_ = err // blocking PopView returns elements or ErrClosed
				return Stop
			}
			emit := func(vals, vals2 []T, sigs, sigs2 []Signal) bool {
				if len(vals) > 0 {
					ss := sigsFor(sigs, len(vals))
					if keep := fn(vals, ss); keep > 0 {
						if err := PushNSig(out, vals[:keep], ss[:keep]); err != nil {
							return false
						}
					}
				}
				if len(vals2) > 0 {
					ss := sigsFor(sigs2, len(vals2))
					if keep := fn(vals2, ss); keep > 0 {
						if err := PushNSig(out, vals2[:keep], ss[:keep]); err != nil {
							return false
						}
					}
				}
				return true
			}
			ok := emit(v.Vals, v.Vals2, v.Sigs, v.Sigs2)
			ReleaseView[T](in, v.Len())
			if !ok {
				return Stop
			}
			return Proceed
		}
		if cap(scratchV) < max {
			scratchV = make([]T, max)
		}
		sigs := sigsFor(nil, max)
		n, err := PopNSig[T](in, scratchV[:max], sigs)
		if n == 0 {
			_ = err
			return Stop
		}
		if keep := fn(scratchV[:n], sigs[:n]); keep > 0 {
			if err := PushNSig(out, scratchV[:keep], sigs[:keep]); err != nil {
				return Stop
			}
		}
		return Proceed
	}
	return l
}
