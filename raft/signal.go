package raft

import (
	"errors"

	"raftlib/internal/core"
	"raftlib/internal/ringbuffer"
)

// Status is returned by a kernel's Run method to tell the scheduler how to
// proceed.
type Status = core.Status

// Kernel run statuses (the paper's raft::kstatus values, plus Stall for
// cooperative schedulers).
const (
	// Proceed requests another Run invocation (raft::proceed).
	Proceed = core.Proceed
	// Stop marks the kernel finished (raft::stop).
	Stop = core.Stop
	// Stall tells a cooperative scheduler the kernel cannot progress yet.
	Stall = core.Stall
)

// Signal is an in-band message synchronized with a stream element (§4.2 of
// the paper). Signals ride the FIFO: a downstream kernel receives the
// signal exactly when it receives the corresponding data element.
type Signal = ringbuffer.Signal

// Predefined signals.
const (
	// SigNone is the default (absent) signal.
	SigNone = ringbuffer.SigNone
	// SigEOF marks the final element of a stream (end-of-file).
	SigEOF = ringbuffer.SigEOF
	// SigTerm requests immediate termination.
	SigTerm = ringbuffer.SigTerm
	// SigUser is the first application-defined signal value.
	SigUser = ringbuffer.SigUser
)

// ErrClosed is returned by port operations once a stream has been closed by
// its producer and drained (reads), or closed outright (writes). Kernels
// typically translate it into Stop.
var ErrClosed = ringbuffer.ErrClosed

// IsClosed reports whether err indicates a closed stream.
func IsClosed(err error) bool { return errors.Is(err, ErrClosed) }
