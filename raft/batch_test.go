package raft

import (
	"testing"
	"time"

	"raftlib/internal/core"
)

// bulkHarness binds a pair of ports to one queue, mimicking allocate().
func bulkHarness(t *testing.T, lockFree bool) (*Port, *Port) {
	t.Helper()
	src := newPort[int]("out", Out)
	dst := newPort[int]("in", In)
	q, typed := src.mk(8, 0, lockFree)
	async := &asyncCell{}
	src.bind(q, typed, async)
	dst.bind(q, typed, async)
	bc := &core.BatchControl{}
	src.batch, dst.batch = bc, bc
	return src, dst
}

func testBulkRoundTrip(t *testing.T, lockFree bool) {
	src, dst := bulkHarness(t, lockFree)
	vs := []int{1, 2, 3, 4, 5}
	sigs := []Signal{SigNone, SigUser, SigNone, SigNone, SigEOF}
	if err := PushNSig(src, vs, sigs); err != nil {
		t.Fatal(err)
	}
	gotV := make([]int, 8)
	gotS := make([]Signal, 8)
	n, err := PopNSig[int](dst, gotV, gotS)
	if err != nil || n != 5 {
		t.Fatalf("PopNSig = (%d,%v), want (5,nil)", n, err)
	}
	for i := range vs {
		if gotV[i] != vs[i] || gotS[i] != sigs[i] {
			t.Fatalf("element %d = (%d,%v), want (%d,%v)", i, gotV[i], gotS[i], vs[i], sigs[i])
		}
	}
	// DrainTo on the now-empty open stream: (0, nil).
	if n, err := DrainTo[int](dst, gotV); n != 0 || err != nil {
		t.Fatalf("DrainTo empty = (%d,%v), want (0,nil)", n, err)
	}
	src.Close()
	if n, err := PopN[int](dst, gotV); n != 0 || err != ErrClosed {
		t.Fatalf("PopN closed = (%d,%v), want (0,ErrClosed)", n, err)
	}
}

func TestBulkAccessorsRing(t *testing.T) { testBulkRoundTrip(t, false) }
func TestBulkAccessorsSPSC(t *testing.T) { testBulkRoundTrip(t, true) }

// TestBulkTypeMismatchPanics mirrors the element-wise accessors' contract.
func TestBulkTypeMismatchPanics(t *testing.T) {
	src, _ := bulkHarness(t, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on type mismatch")
		}
	}()
	_ = PushN(src, []string{"x"})
}

// TestBatchHint checks the 0-means-default contract and the nil-safety of
// unbound ports.
func TestBatchHint(t *testing.T) {
	p := newPort[int]("out", Out)
	if got := p.BatchHint(16); got != 16 {
		t.Fatalf("unbound BatchHint = %d, want fallback 16", got)
	}
	src, _ := bulkHarness(t, false)
	if got := src.BatchHint(16); got != 16 {
		t.Fatalf("no-decision BatchHint = %d, want 16", got)
	}
	src.batch.Set(64)
	if got := src.BatchHint(16); got != 64 {
		t.Fatalf("decided BatchHint = %d, want 64", got)
	}
}

// TestMoveBatchedEquivalence moves a signalled stream through moveBatched
// and checks the destination matches the source exactly.
func TestMoveBatchedEquivalence(t *testing.T) {
	src, _ := bulkHarness(t, false)
	out, in := bulkHarness(t, false)
	const total = 300
	go func() {
		for i := 0; i < total; i++ {
			sig := SigNone
			if i%7 == 0 {
				sig = SigUser
			}
			if err := PushSig(src, i, sig); err != nil {
				return
			}
		}
		src.Close()
	}()
	vals := make([]int, 16)
	sigs := make([]Signal, 16)
	go func() {
		for {
			if _, err := moveBatched[int](src.typed, out.typed, 16, true, vals, sigs); err != nil {
				out.Close()
				return
			}
		}
	}()
	want := 0
	for {
		v, s, err := PopSig[int](in)
		if err != nil {
			break
		}
		wantSig := SigNone
		if want%7 == 0 {
			wantSig = SigUser
		}
		if v != want || s != wantSig {
			t.Fatalf("element %d = (%d,%v), want (%d,%v)", want, v, s, want, wantSig)
		}
		want++
	}
	if want != total {
		t.Fatalf("moved %d elements, want %d", want, total)
	}
}

// TestExeAdaptiveBatchingEquivalence runs the same pipeline with and
// without adaptive batching and requires byte-identical results.
func TestExeAdaptiveBatchingEquivalence(t *testing.T) {
	run := func(opts ...Option) []int {
		src := &sliceSource{vals: seq(0, 500)}
		src.SetName("src")
		AddOutput[int](src, "out")
		var got []int
		sink := &sliceSink{dst: &got}
		sink.SetName("sink")
		AddInput[int](sink, "in")
		m := NewMap()
		m.MustLink(src, sink)
		if _, err := m.Exe(append(opts, WithMonitorDelta(ringDelta))...); err != nil {
			t.Fatal(err)
		}
		return got
	}
	plain := run()
	adaptive := run(WithAdaptiveBatching(true), WithBatchMax(32))
	if len(plain) != len(adaptive) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(adaptive))
	}
	for i := range plain {
		if plain[i] != adaptive[i] {
			t.Fatalf("element %d differs: %d vs %d", i, plain[i], adaptive[i])
		}
	}
}

// TestAsLowLatencyPinsBatch verifies the link option pins the control at 1
// and reports LatencyPriority to the monitor.
func TestAsLowLatencyPinsBatch(t *testing.T) {
	src := &sliceSource{vals: seq(0, 10)}
	src.SetName("src")
	AddOutput[int](src, "out")
	var got []int
	sink := &sliceSink{dst: &got}
	sink.SetName("sink")
	AddInput[int](sink, "in")
	m := NewMap()
	l := m.MustLink(src, sink, AsLowLatency())
	if !l.LowLatency() {
		t.Fatal("link not marked low-latency")
	}
	infos, err := m.allocate(&Config{DefaultCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !infos[0].LatencyPriority {
		t.Fatal("LinkInfo.LatencyPriority not set")
	}
	if !infos[0].Batch.Pinned() || infos[0].Batch.Get() != 1 {
		t.Fatalf("batch = %d pinned=%v, want pinned at 1", infos[0].Batch.Get(), infos[0].Batch.Pinned())
	}
	if l.SrcPort.BatchHint(99) != 1 || l.DstPort.BatchHint(99) != 1 {
		t.Fatal("ports do not see the pinned batch size")
	}
}

// --- minimal helper kernels ---

const ringDelta = 50 * time.Microsecond // keep the monitor cheap in tests

type sliceSource struct {
	KernelBase
	vals []int
	i    int
}

func (s *sliceSource) Run() Status {
	if s.i >= len(s.vals) {
		return Stop
	}
	if err := Push(s.Out("out"), s.vals[s.i]); err != nil {
		return Stop
	}
	s.i++
	return Proceed
}

type sliceSink struct {
	KernelBase
	dst *[]int
}

func (s *sliceSink) Run() Status {
	v, err := Pop[int](s.In("in"))
	if err != nil {
		return Stop
	}
	*s.dst = append(*s.dst, v)
	return Proceed
}

func seq(from, to int) []int {
	out := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, i)
	}
	return out
}
