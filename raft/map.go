package raft

import (
	"fmt"
)

// Map assembles kernels into a streaming topology (the paper's raft::map,
// §4, Fig. 3). Build it with Link calls, then execute with Exe.
type Map struct {
	kernels  []Kernel
	index    map[*KernelBase]int
	links    []*Link
	exc      exception
	executed bool
}

// NewMap returns an empty topology.
func NewMap() *Map {
	return &Map{index: map[*KernelBase]int{}}
}

// Link is one stream connection between two kernels. The paper's link()
// returns a struct with src/dst references for chaining (Fig. 3); Link's
// Src and Dst fields serve the same purpose.
type Link struct {
	// Src and Dst are the connected kernels, re-usable in later Link calls.
	Src, Dst Kernel
	// SrcPort and DstPort are the bound endpoints.
	SrcPort, DstPort *Port

	capacity    int
	maxCap      int
	outOfOrder  bool
	reorderable bool
	lowLatency  bool
	lockFree    bool
	bestEffort  bool
}

// OutOfOrder reports whether the link permits out-of-order processing,
// making the downstream kernel a candidate for automatic replication.
func (l *Link) OutOfOrder() bool { return l.outOfOrder }

// Reorderable reports whether the link permits parallel processing with
// the original order restored downstream.
func (l *Link) Reorderable() bool { return l.reorderable }

// LowLatency reports whether the link is exempt from adaptive batching.
func (l *Link) LowLatency() bool { return l.lowLatency }

// LockFree reports whether the link requested a lock-free SPSC queue.
func (l *Link) LockFree() bool { return l.lockFree }

// BestEffort reports whether the link runs the drop/latest-wins overflow
// policy instead of producer backpressure.
func (l *Link) BestEffort() bool { return l.bestEffort }

// LinkOption customizes one Link call.
type LinkOption func(*linkSpec)

type linkSpec struct {
	from, to    string
	capacity    int
	maxCap      int
	outOfOrder  bool
	reorderable bool
	lowLatency  bool
	lockFree    bool
	bestEffort  bool
	convert     bool
}

// From selects the source kernel's output port by name (needed when the
// source has more than one unbound output).
func From(port string) LinkOption { return func(s *linkSpec) { s.from = port } }

// To selects the destination kernel's input port by name — the paper's
// third link() argument (e.g. "input_b" in Fig. 3).
func To(port string) LinkOption { return func(s *linkSpec) { s.to = port } }

// Cap sets the stream's initial queue capacity, overriding the Exe-wide
// default. The runtime monitor may still resize it dynamically.
func Cap(n int) LinkOption { return func(s *linkSpec) { s.capacity = n } }

// MaxCap bounds monitor-driven growth for this stream (the paper's buffer
// cap).
func MaxCap(n int) LinkOption { return func(s *linkSpec) { s.maxCap = n } }

// AsOutOfOrder marks the stream's data as processable out of order,
// enabling automatic replication of the downstream kernel (§4.1: "Streams
// that can be processed out of order are ideal candidates for the run-time
// to automatically parallelize", "indicated by the user at link type").
func AsOutOfOrder() LinkOption { return func(s *linkSpec) { s.outOfOrder = true } }

// AsLowLatency marks the stream as latency-priority: consumers need each
// element as soon as it exists, so the adaptive batcher pins the link's
// transfer batch size at 1 and never grows it (WithAdaptiveBatching's
// per-link escape hatch). Bulk operations still work on the stream; only
// the monitor's batching decisions are bypassed.
func AsLowLatency() LinkOption { return func(s *linkSpec) { s.lowLatency = true } }

// AsLockFree backs this one stream with a lock-free SPSC queue instead of
// the default mutex ring — the per-link form of WithLockFreeQueues. The
// stream loses window (PeekRange) access but keeps dynamic resizing: the
// monitor publishes a larger ring and the producer installs it at its
// next push (epoch swap), so hot single-stream links get the fast ring
// without giving up §4.1's buffer-sizing rules.
func AsLockFree() LinkOption { return func(s *linkSpec) { s.lockFree = true } }

// AsBestEffort opts the stream out of producer backpressure: when the
// queue is full, elements are discarded instead of blocking the producer.
// The default mutex ring evicts the oldest buffered elements (latest-wins
// — the consumer always sees the freshest suffix, the natural policy for
// monitoring/sampling streams); a lock-free stream (AsLockFree /
// WithLockFreeQueues) sheds the incoming elements instead, since its
// consumer owns the head slot. Either way drops are counted in the link's
// Dropped telemetry — surfaced in Report, live stats and Prometheus — and
// signal-carrying elements (SigEOF etc.) are never dropped, so stream
// teardown stays reliable. Latency is bounded; delivery is not.
func AsBestEffort() LinkOption { return func(s *linkSpec) { s.bestEffort = true } }

// AsReorderable marks the stream's data as processable out of order with
// the original order restored downstream — the paper's third mode (§4.1:
// kernels that "can process the data out of order and re-order at some
// later time"). The replicated kernel must be 1:1 (exactly one output
// element per input element); the runtime uses deterministic round-robin
// split and merge adapters, which restore global order without sequence
// tags. Reorderable groups run at a fixed width (the monitor cannot
// change the replica count mid-run).
func AsReorderable() LinkOption {
	return func(s *linkSpec) { s.reorderable = true }
}

// add registers a kernel with the map (idempotent), assigning its default
// name.
func (m *Map) add(k Kernel) error {
	kb := k.kernelBase()
	if _, ok := m.index[kb]; ok {
		return nil
	}
	if kb.m != nil && kb.m != m {
		return fmt.Errorf("raft: kernel %q already belongs to another map", kernelName(k))
	}
	kb.m = m
	if kb.name == "" {
		kb.name = fmt.Sprintf("%s#%d", kernelName(k), len(m.kernels))
	}
	m.index[kb] = len(m.kernels)
	m.kernels = append(m.kernels, k)
	return nil
}

// Link connects an output port of src to an input port of dst. Ports are
// inferred when unambiguous (a kernel with exactly one unbound output or
// input) and selected with From/To otherwise. Element types are checked
// immediately; a mismatch is an error, the library's stand-in for the C++
// template compile error.
func (m *Map) Link(src, dst Kernel, opts ...LinkOption) (*Link, error) {
	var spec linkSpec
	for _, o := range opts {
		o(&spec)
	}
	if src == nil || dst == nil {
		return nil, fmt.Errorf("raft: Link requires non-nil kernels")
	}
	if err := m.add(src); err != nil {
		return nil, err
	}
	if err := m.add(dst); err != nil {
		return nil, err
	}
	sp, err := pickPort(src.kernelBase(), Out, spec.from)
	if err != nil {
		return nil, err
	}
	dp, err := pickPort(dst.kernelBase(), In, spec.to)
	if err != nil {
		return nil, err
	}
	if sp.elem != dp.elem {
		if spec.convert {
			return m.convertedLink(src, dst, sp, dp, spec)
		}
		return nil, fmt.Errorf("raft: %w linking %s -> %s (AllowConvert permits numeric casts)", ErrTypeMismatch, sp, dp)
	}
	l := &Link{
		Src: src, Dst: dst, SrcPort: sp, DstPort: dp,
		capacity: spec.capacity, maxCap: spec.maxCap,
		outOfOrder: spec.outOfOrder, reorderable: spec.reorderable,
		lowLatency: spec.lowLatency, lockFree: spec.lockFree,
		bestEffort: spec.bestEffort,
	}
	sp.link = l
	dp.link = l
	m.links = append(m.links, l)
	return l, nil
}

// MustLink is Link that panics on error, for topology-construction code
// where a linking mistake is a programming bug.
func (m *Map) MustLink(src, dst Kernel, opts ...LinkOption) *Link {
	l, err := m.Link(src, dst, opts...)
	if err != nil {
		panic(err)
	}
	return l
}

// pickPort resolves the port to bind: the named one, or the single unbound
// port in the given direction.
func pickPort(kb *KernelBase, dir Direction, name string) (*Port, error) {
	names, ports := kb.outNames, kb.outPorts
	if dir == In {
		names, ports = kb.inNames, kb.inPorts
	}
	if name != "" {
		p, ok := ports[name]
		if !ok {
			return nil, fmt.Errorf("raft: kernel %q has no %s port %q: %w", kb.name, dir, name, ErrPortNotFound)
		}
		if p.Bound() {
			return nil, fmt.Errorf("raft: port %s is already linked: %w", p, ErrPortInUse)
		}
		return p, nil
	}
	var free []*Port
	for _, n := range names {
		if !ports[n].Bound() {
			free = append(free, ports[n])
		}
	}
	switch len(free) {
	case 1:
		return free[0], nil
	case 0:
		return nil, fmt.Errorf("raft: kernel %q has no unbound %s port: %w", kb.name, dir, ErrPortNotFound)
	default:
		return nil, fmt.Errorf("raft: kernel %q has %d unbound %s ports; select one with %s",
			kb.name, len(free), dir, fromOrTo(dir))
	}
}

func fromOrTo(dir Direction) string {
	if dir == In {
		return "To(...)"
	}
	return "From(...)"
}

// Kernels returns the kernels registered so far, in registration order.
func (m *Map) Kernels() []Kernel { return append([]Kernel(nil), m.kernels...) }

// Links returns the links created so far, in creation order.
func (m *Map) Links() []*Link { return append([]*Link(nil), m.links...) }
