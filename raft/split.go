package raft

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"raftlib/internal/core"
)

// SplitPolicy selects how a split adapter distributes elements across the
// replicas of a parallelized kernel (§4.1: "the run-time attempts to
// select the best amongst round-robin and least-utilized strategies").
type SplitPolicy int

// Split policies.
const (
	// RoundRobin cycles elements across active replicas.
	RoundRobin SplitPolicy = iota
	// LeastUtilized sends each batch to the replica whose input queue is
	// currently shortest ("queue utilization used to direct data flow to
	// less utilized servers").
	LeastUtilized
)

// String returns the policy name.
func (p SplitPolicy) String() string {
	if p == LeastUtilized {
		return "least-utilized"
	}
	return "round-robin"
}

// splitBatch is how many elements a split/merge adapter moves per pick when
// the adaptive batcher has made no decision; a small batch amortizes the
// policy decision without harming balance.
const splitBatch = 16

// adapterScratch sizes the scratch buffers of an adapter's batched mover —
// the ceiling on a single framed transfer regardless of the batch hint.
const adapterScratch = 256

// splitKernel distributes one input stream across up to width output
// streams, honoring a dynamically adjustable active width (the monitor's
// scale-up/down lever).
type splitKernel struct {
	KernelBase
	policy SplitPolicy
	active atomic.Int32
	rr     int
	// mover is the batched transfer closure (one PopN + one PushN per hop)
	// built from the port spec; its scratch buffers are allocated once here.
	mover func(src, dst any, max int, block bool) (int, error)
}

// newSplitFromSpec builds a split whose ports replicate the element type of
// the given port spec (used by the auto-replication rewrite, which cannot
// name T).
func newSplitFromSpec(spec *Port, width int, policy SplitPolicy, initialActive int) *splitKernel {
	s := &splitKernel{policy: policy}
	s.SetName("split")
	if spec.mkMover != nil {
		s.mover = spec.mkMover(adapterScratch)
	}
	s.addPort(spec.cloneSpec("in", In))
	for i := 0; i < width; i++ {
		s.addPort(spec.cloneSpec(strconv.Itoa(i), Out))
	}
	if initialActive < 1 {
		initialActive = 1
	}
	if initialActive > width {
		initialActive = width
	}
	s.active.Store(int32(initialActive))
	return s
}

// NewSplit returns a standalone split kernel with one input port "in" and
// width output ports "0".."width-1", all carrying T. All outputs start
// active. Use it to build manual fan-out topologies; the runtime inserts
// equivalent adapters automatically for replicated kernels.
func NewSplit[T any](width int, policy SplitPolicy) Kernel {
	if width < 1 {
		panic("raft: NewSplit width must be >= 1")
	}
	spec := newPort[T]("in", In)
	return newSplitFromSpec(spec, width, policy, width)
}

// Run implements Kernel: move a batch from the input to the policy-chosen
// active output.
//
// Round-robin is the naive strict rotation: it commits to the next output
// and blocks if that replica's queue is full, even while other replicas
// starve — exactly the behavior that motivates the least-utilized
// alternative. Least-utilized inspects queue occupancy ("queue utilization
// used to direct data flow to less utilized servers", §4.1): it prefers
// the emptiest queue with free space, sizes the batch to the space
// available (the split is each replica queue's only producer, so observed
// free space cannot shrink underneath it), and blocks only when every
// active replica is full.
func (s *splitKernel) Run() Status {
	in := s.In("in")
	out, batch := s.pick(in.BatchHint(splitBatch))
	if s.mover != nil {
		n, err := s.mover(in.typed, out.typed, batch, true)
		if n > 0 {
			forwardMarks(in, out)
		}
		if err != nil {
			return Stop // input drained (or a downstream queue force-closed)
		}
		return Proceed
	}
	n, err := in.moveBlocking(in.typed, out.typed, batch)
	if n > 0 {
		forwardMarks(in, out)
	}
	if err != nil {
		return Stop
	}
	return Proceed
}

// pick selects the destination port among the active outputs and the batch
// size to move there; hint is the adaptive batcher's target for the inbound
// link (falling back to splitBatch).
func (s *splitKernel) pick(hint int) (*Port, int) {
	outs := s.OutPorts()
	active := int(s.active.Load())
	if active < 1 {
		active = 1
	}
	if active > len(outs) {
		active = len(outs)
	}
	switch s.policy {
	case LeastUtilized:
		best := outs[0]
		bestLen := best.Len()
		for _, p := range outs[1:active] {
			if l := p.Len(); l < bestLen {
				best, bestLen = p, l
			}
		}
		space := 1
		if q := best.Queue(); q != nil {
			if free := q.Cap() - bestLen; free > 1 {
				space = free
			}
		}
		if space > hint {
			space = hint
		}
		return best, space
	default:
		p := outs[s.rr%active]
		s.rr++
		return p, hint
	}
}

// mergeKernel funnels up to width input streams into one output stream,
// completing only when every input has closed. Arrival order across inputs
// is not preserved (the out-of-order contract).
type mergeKernel struct {
	KernelBase
	next int
	idle int
	// mover frames each input sweep (one DrainTo + one PushN per input)
	// instead of ping-ponging TryPop/Push element-wise.
	mover func(src, dst any, max int, block bool) (int, error)
}

// newMergeFromSpec builds a merge whose ports replicate the element type of
// the given port spec.
func newMergeFromSpec(spec *Port, width int) *mergeKernel {
	m := &mergeKernel{}
	m.SetName("merge")
	if spec.mkMover != nil {
		m.mover = spec.mkMover(adapterScratch)
	}
	for i := 0; i < width; i++ {
		m.addPort(spec.cloneSpec(strconv.Itoa(i), In))
	}
	m.addPort(spec.cloneSpec("out", Out))
	return m
}

// NewMerge returns a standalone merge kernel with width input ports
// "0".."width-1" and one output port "out", all carrying T.
func NewMerge[T any](width int) Kernel {
	if width < 1 {
		panic("raft: NewMerge width must be >= 1")
	}
	spec := newPort[T]("out", Out)
	return newMergeFromSpec(spec, width)
}

// Run implements Kernel: sweep the inputs round-robin, draining whatever is
// ready. Between empty sweeps the merge backs off so it does not burn a
// core while its producers compute.
func (m *mergeKernel) Run() Status {
	out := m.Out("out")
	ins := m.InPorts()
	hint := out.BatchHint(splitBatch)
	moved := 0
	open := 0
	for i := range ins {
		in := ins[(m.next+i)%len(ins)]
		var (
			n   int
			err error
		)
		if m.mover != nil {
			n, err = m.mover(in.typed, out.typed, hint, false)
		} else {
			n, err = in.move(in.typed, out.typed, hint)
		}
		if n > 0 {
			forwardMarks(in, out)
		}
		moved += n
		if err == nil {
			open++
		}
	}
	m.next++
	if moved > 0 {
		m.idle = 0
		return Proceed
	}
	if open == 0 || out.Closed() {
		return Stop
	}
	m.idle++
	if m.idle > 8 {
		d := time.Duration(m.idle) * time.Microsecond
		if d > 200*time.Microsecond {
			d = 200 * time.Microsecond
		}
		time.Sleep(d)
	}
	return Proceed
}

// groupScaler exposes a replicated kernel group's width to the runtime
// monitor (core.Scaler).
type groupScaler struct {
	name    string
	split   *splitKernel
	max     int
	inLink  *core.LinkInfo
	outLink *core.LinkInfo
	// workers are the replica kernels behind the split, in replica order;
	// workerIDs are their trace actor ids, resolved once actors exist.
	// The monitor's rate-driven width rule reads them (via WorkerActors)
	// to look up each replica's non-blocking service-rate estimate.
	workers   []Kernel
	workerIDs []int32
}

func (g *groupScaler) Name() string { return g.name }

func (g *groupScaler) Active() int { return int(g.split.active.Load()) }

func (g *groupScaler) Max() int { return g.max }

func (g *groupScaler) SetActive(n int) {
	if n < 1 {
		n = 1
	}
	if n > g.max {
		n = g.max
	}
	g.split.active.Store(int32(n))
}

func (g *groupScaler) InputLink() *core.LinkInfo { return g.inLink }

func (g *groupScaler) OutputLink() *core.LinkInfo { return g.outLink }

// resolveWorkers fills workerIDs from the map's kernel index (actor ids
// equal kernel indices, and each actor's trace id equals its actor id).
func (g *groupScaler) resolveWorkers(index map[*KernelBase]int) {
	g.workerIDs = g.workerIDs[:0]
	for _, w := range g.workers {
		if id, ok := index[w.kernelBase()]; ok {
			g.workerIDs = append(g.workerIDs, int32(id))
		}
	}
}

// WorkerActors implements the monitor's optional workerLister interface:
// the trace actor ids of the group's replicas, for per-replica µ̂ lookup.
func (g *groupScaler) WorkerActors() []int32 { return g.workerIDs }

var _ core.Scaler = (*groupScaler)(nil)

// replicable reports whether the rewrite can parallelize kernel k: it must
// opt in via Cloner, have exactly one input and one output, and its
// inbound link must be marked AsOutOfOrder or AsReorderable.
func replicable(k Kernel, inbound *Link) bool {
	if _, ok := k.(Cloner); !ok {
		return false
	}
	kb := k.kernelBase()
	if len(kb.inNames) != 1 || len(kb.outNames) != 1 {
		return false
	}
	return inbound != nil && (inbound.outOfOrder || inbound.reorderable)
}

// duplicateKernel clones k and validates the clone's port signature.
func duplicateKernel(k Kernel) (Kernel, error) {
	c, ok := k.(Cloner)
	if !ok {
		return nil, fmt.Errorf("raft: kernel %q is not cloneable", kernelName(k))
	}
	dup := c.Clone()
	if dup == nil {
		return nil, fmt.Errorf("raft: kernel %q Clone returned nil", kernelName(k))
	}
	ob, nb := k.kernelBase(), dup.kernelBase()
	if len(ob.inNames) != len(nb.inNames) || len(ob.outNames) != len(nb.outNames) {
		return nil, fmt.Errorf("raft: kernel %q Clone changed port counts", kernelName(k))
	}
	return dup, nil
}
