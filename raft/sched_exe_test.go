package raft

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// collectIntKernel gathers int elements (the gateway Source test feeds
// ints, not the int64 the shared collect helper takes).
type collectIntKernel struct {
	KernelBase
	mu  sync.Mutex
	got []int
}

func newCollectInt() *collectIntKernel {
	k := &collectIntKernel{}
	AddInput[int](k, "in")
	return k
}

func (c *collectIntKernel) Run() Status {
	v, err := Pop[int](c.In("in"))
	if err != nil {
		return Stop
	}
	c.mu.Lock()
	c.got = append(c.got, v)
	c.mu.Unlock()
	return Proceed
}

func (c *collectIntKernel) values() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.got...)
}

// TestWorkStealEndToEnd runs a plain pipeline under the work-stealing
// scheduler and checks the full surface: results intact, the report names
// the scheduler, and the Sched section carries its counters.
func TestWorkStealEndToEnd(t *testing.T) {
	m := NewMap()
	dbl := newFlakyDouble() // no panics: just a doubling stage
	sink := newCollect()
	if _, err := m.Link(newGen(5000), dbl, Cap(16), MaxCap(16)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(dbl, sink, Cap(16), MaxCap(16)); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithWorkStealing(2), WithDynamicResize(false))
	if err != nil {
		t.Fatalf("Exe: %v", err)
	}
	got := sink.values()
	if len(got) != 5000 {
		t.Fatalf("collected %d values, want 5000", len(got))
	}
	for i, v := range got {
		if v != int64(2*i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, 2*i)
		}
	}
	if rep.Scheduler != "worksteal-2" {
		t.Fatalf("Report.Scheduler = %q, want worksteal-2", rep.Scheduler)
	}
	if rep.Sched == nil {
		t.Fatal("Report.Sched is nil under the work-stealing scheduler")
	}
	if rep.Sched.Workers != 2 {
		t.Fatalf("Report.Sched.Workers = %d, want 2", rep.Sched.Workers)
	}
}

// TestWorkStealSupervisionRestartBudget crosses the work-stealing
// scheduler with supervised recovery: transient panics must be retried and
// survive, and a permanently failing kernel must still exhaust its restart
// budget and escalate rather than being re-queued forever.
func TestWorkStealSupervisionRestartBudget(t *testing.T) {
	m := NewMap()
	flaky := newFlakyDouble(3, 11) // panics once each on inputs 3 and 11
	sink := newCollect()
	if _, err := m.Link(newGen(20), flaky); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(flaky, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(
		WithWorkStealing(2),
		WithSupervision(SupervisionPolicy{InitialBackoff: time.Microsecond}),
	)
	if err != nil {
		t.Fatalf("Exe: %v", err)
	}
	// Inputs 3 and 11 are consumed by the panicking invocations; the other
	// 18 must come through doubled, in order.
	if got := sink.values(); len(got) != 18 {
		t.Fatalf("collected %d values, want 18", len(got))
	}
	if len(rep.Recoveries) != 2 {
		t.Fatalf("Report.Recoveries has %d events, want 2", len(rep.Recoveries))
	}

	// Budget exhaustion must escalate under work-stealing too.
	m2 := NewMap()
	dead := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
		panic("permanently broken")
	})
	if _, err := m2.Link(newGen(10), dead); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Link(dead, newCollect()); err != nil {
		t.Fatal(err)
	}
	_, err = m2.Exe(
		WithWorkStealing(2),
		WithSupervision(SupervisionPolicy{MaxRestarts: 2, InitialBackoff: time.Microsecond}),
	)
	if err == nil {
		t.Fatal("Exe succeeded despite a permanently failing kernel")
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("err %v does not wrap ErrRetriesExhausted", err)
	}
}

// TestCheckpointResumeUnderPooledSchedulers re-runs the cross-execution
// checkpoint resume scenario under both pooled scheduling strategies: the
// persisted counter must survive an injected kill and carry across
// executions regardless of which scheduler drives the kernels.
func TestCheckpointResumeUnderPooledSchedulers(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"pool", WithPoolScheduler(2)},
		{"worksteal", WithWorkStealing(2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			run := func(kills ...uint64) uint64 {
				m := NewMap()
				flaky := newFlakyDouble()
				flaky.SetName("dbl")
				sink := newCollect()
				if _, err := m.Link(newGen(30), flaky); err != nil {
					t.Fatal(err)
				}
				if _, err := m.Link(flaky, sink); err != nil {
					t.Fatal(err)
				}
				opts := []Option{
					tc.opt,
					WithSupervision(SupervisionPolicy{InitialBackoff: time.Microsecond}),
					WithCheckpoints(dir),
				}
				if len(kills) > 0 {
					inj := NewFaultInjector()
					for _, at := range kills {
						inj.KillKernel("dbl", at)
					}
					opts = append(opts, WithFaultInjection(inj))
				}
				if _, err := m.Exe(opts...); err != nil {
					t.Fatal(err)
				}
				return flaky.processed
			}
			if got := run(5); got != 30 {
				t.Fatalf("first run processed %d, want 30", got)
			}
			if got := run(); got != 60 {
				t.Fatalf("resumed run processed %d, want 60 (cross-execution resume)", got)
			}
		})
	}
}

// TestGatewaySourceDrainsOnWorkStealShard checks the gateway intake path
// under work-stealing: a Source kernel lives on a shard like any other
// kernel, accepted batches reach the sink exactly once, and CloseIntake
// still drains buffered batches and propagates EOF so the run completes.
func TestGatewaySourceDrainsOnWorkStealShard(t *testing.T) {
	src := NewSource[int]("nums")
	sink := newCollectInt()
	m := NewMap()
	if _, err := m.Link(src, sink, Cap(8), MaxCap(8)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		defer close(done)
		rep, runErr = m.Exe(WithWorkStealing(2), WithDynamicResize(false))
	}()

	const batches, per = 50, 20
	next := 0
	for b := 0; b < batches; b++ {
		vals := make([]int, per)
		for i := range vals {
			vals[i] = next
			next++
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := src.inject("", vals, false); err == nil {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("inject batch %d: %v", b, err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	src.CloseIntake()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Exe did not complete after CloseIntake under work-stealing")
	}
	if runErr != nil {
		t.Fatalf("Exe: %v", runErr)
	}
	got := sink.values()
	if len(got) != batches*per {
		t.Fatalf("sink saw %d values, want %d (drain must be lossless)", len(got), batches*per)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
	if rep.Sched == nil {
		t.Fatal("Report.Sched is nil under the work-stealing scheduler")
	}
}
