package raft

import (
	"reflect"

	"raftlib/internal/ringbuffer"
	"raftlib/internal/trace"
)

// Kernel is one compute kernel: a sequentially-written unit of work that
// communicates only through its ports. Implementations embed [KernelBase]
// (which supplies the unexported plumbing method) and define Run.
type Kernel interface {
	// Run performs one unit of work: read from input ports, write to
	// output ports, and return Proceed to be invoked again, Stop when
	// finished, or Stall when no progress is possible yet.
	Run() Status

	// kernelBase is provided by the embedded KernelBase.
	kernelBase() *KernelBase
}

// Cloner is implemented by kernels that can be replicated for data
// parallelism (paper §4.1: "it is often possible to replicate kernels ...
// without altering the application semantics"). Clone must return a fresh
// kernel with identical port declarations and no shared mutable state.
type Cloner interface {
	Clone() Kernel
}

// Initializer is implemented by kernels needing one-time setup before the
// first Run; the runtime calls Init on the kernel's execution resource.
type Initializer interface {
	Init() error
}

// Finalizer is implemented by kernels needing one-time teardown after the
// last Run (e.g. flushing a reduction result).
type Finalizer interface {
	Finalize()
}

// QueueProvider is implemented by source kernels that supply their own
// pre-filled output queue — the zero-copy mechanism behind the paper's
// for_each kernel (§4.2, Fig. 6), where the user's array memory is used
// directly as the downstream queue.
type QueueProvider interface {
	// ProvideQueue returns the queue for the named output port, or
	// ok=false to let the runtime allocate normally.
	ProvideQueue(port string) (q ringbuffer.Queue, typed any, ok bool)
}

// KernelBase supplies the port containers and identity shared by all
// kernels; embed it (by value) in every kernel type.
type KernelBase struct {
	name    string
	weight  float64
	virtual bool

	inNames  []string
	outNames []string
	inPorts  map[string]*Port
	outPorts map[string]*Port

	m *Map // owning map, set by Link

	// Latency-marker carriage (see marker.go): marks is the execution's
	// rig (nil when markers are off), pendingMarks holds markers picked up
	// but not yet forwarded, markForward opts bridge endpoints out of
	// stamping and retirement, and actor is the kernel's trace actor id
	// (set by Exe; used to attribute marker events to kernel tracks).
	marks        *markerRig
	pendingMarks []*trace.Marker
	markForward  bool
	actor        int32

	// rigid marks kernels a live graph rewrite must not touch: replication
	// adapters and group members, whose movers capture typed queues at
	// construction and therefore cannot be rebound.
	rigid bool
}

func (k *KernelBase) kernelBase() *KernelBase { return k }

// Name returns the kernel's name (defaulting to its Go type name once it
// joins a Map).
func (k *KernelBase) Name() string { return k.name }

// SetName overrides the kernel's report/debug name.
func (k *KernelBase) SetName(name string) { k.name = name }

// Weight returns the kernel's relative compute-cost estimate used by the
// mapper (default 1).
func (k *KernelBase) Weight() float64 {
	if k.weight <= 0 {
		return 1
	}
	return k.weight
}

// SetWeight sets the mapper cost estimate.
func (k *KernelBase) SetWeight(w float64) { k.weight = w }

// SetVirtual marks the kernel as momentary: it provides its outputs
// up-front (see QueueProvider) and is never scheduled (§4.2: the for_each
// source "appears as a kernel only momentarily").
func (k *KernelBase) SetVirtual(v bool) { k.virtual = v }

// Virtual reports whether the kernel is momentary.
func (k *KernelBase) Virtual() bool { return k.virtual }

// In returns the named input port, panicking if it does not exist (a
// kernel-construction bug, analogous to the C++ template failing to
// compile). The panic value is an error wrapping ErrPortNotFound.
func (k *KernelBase) In(name string) *Port {
	p, ok := k.inPorts[name]
	if !ok {
		panic(misuse(ErrPortNotFound, "kernel %q has no input port %q", k.name, name))
	}
	return p
}

// Out returns the named output port, panicking (with an error wrapping
// ErrPortNotFound) if it does not exist.
func (k *KernelBase) Out(name string) *Port {
	p, ok := k.outPorts[name]
	if !ok {
		panic(misuse(ErrPortNotFound, "kernel %q has no output port %q", k.name, name))
	}
	return p
}

// InNames returns the input port names in declaration order.
func (k *KernelBase) InNames() []string { return append([]string(nil), k.inNames...) }

// OutNames returns the output port names in declaration order.
func (k *KernelBase) OutNames() []string { return append([]string(nil), k.outNames...) }

// InPorts returns the input ports in declaration order.
func (k *KernelBase) InPorts() []*Port { return k.portsOf(k.inNames, k.inPorts) }

// OutPorts returns the output ports in declaration order.
func (k *KernelBase) OutPorts() []*Port { return k.portsOf(k.outNames, k.outPorts) }

func (k *KernelBase) portsOf(names []string, m map[string]*Port) []*Port {
	out := make([]*Port, 0, len(names))
	for _, n := range names {
		out = append(out, m[n])
	}
	return out
}

// InputsDone reports whether every input stream is closed and drained —
// the usual Stop condition for multi-input kernels.
func (k *KernelBase) InputsDone() bool {
	for _, name := range k.inNames {
		q := k.inPorts[name].q
		if q == nil || !q.Closed() || q.Len() > 0 {
			return false
		}
	}
	return true
}

// CloseOutputs closes every output stream, delivering EOF downstream. The
// runtime calls it automatically when the kernel stops.
func (k *KernelBase) CloseOutputs() {
	for _, name := range k.outNames {
		k.outPorts[name].Close()
	}
}

// closeAllQueues closes inputs and outputs; used during teardown so a
// failed kernel unblocks both its producers and consumers.
func (k *KernelBase) closeAllQueues() {
	k.CloseOutputs()
	for _, name := range k.inNames {
		k.inPorts[name].Close()
	}
}

// addPort registers a new port, panicking on duplicates (construction bug).
func (k *KernelBase) addPort(p *Port) {
	p.owner = k
	switch p.dir {
	case In:
		if k.inPorts == nil {
			k.inPorts = map[string]*Port{}
		}
		if _, dup := k.inPorts[p.name]; dup {
			panic(misuse(ErrPortInUse, "kernel %q declares input port %q twice", k.name, p.name))
		}
		k.inPorts[p.name] = p
		k.inNames = append(k.inNames, p.name)
	case Out:
		if k.outPorts == nil {
			k.outPorts = map[string]*Port{}
		}
		if _, dup := k.outPorts[p.name]; dup {
			panic(misuse(ErrPortInUse, "kernel %q declares output port %q twice", k.name, p.name))
		}
		k.outPorts[p.name] = p
		k.outNames = append(k.outNames, p.name)
	}
}

// newPort builds a typed port with its generically-captured queue factory
// and transfer closures.
func newPort[T any](name string, dir Direction) *Port {
	return &Port{
		name: name,
		dir:  dir,
		elem: reflect.TypeOf((*T)(nil)).Elem(),
		mk: func(capacity, maxCap int, lockFree bool) (ringbuffer.Queue, any) {
			if lockFree {
				q := ringbuffer.NewSPSC[T](capacity)
				return q, q
			}
			r := ringbuffer.NewRing[T](capacity)
			if maxCap > 0 {
				r.SetMaxCap(maxCap)
			}
			return r, r
		},
		move:         moveItems[T],
		moveBlocking: moveItemsBlocking[T],
		mkMover: func(scratch int) func(src, dst any, max int, block bool) (int, error) {
			if scratch < 1 {
				scratch = 1
			}
			// Scratch is allocated lazily: both built-in queue kinds take
			// the zero-copy view path (moveView), which never stages
			// elements, so the buffers exist only for custom ProvideQueue
			// queues without view support.
			var vals []T
			var sigs []Signal
			return func(src, dst any, max int, block bool) (int, error) {
				if max > scratch {
					max = scratch // keep the framing ceiling of the scratch path
				}
				if n, err, ok := moveView[T](src, dst, max, block); ok {
					return n, err
				}
				if vals == nil {
					vals = make([]T, scratch)
					sigs = make([]Signal, scratch)
				}
				return moveBatched[T](src, dst, max, block, vals, sigs)
			}
		},
	}
}

// AddInput declares a new input port carrying elements of type T on the
// kernel. Call it from the kernel's constructor (the analogue of the
// paper's input.addPort<T>("name")).
func AddInput[T any](k Kernel, name string) *Port {
	p := newPort[T](name, In)
	k.kernelBase().addPort(p)
	return p
}

// AddOutput declares a new output port carrying elements of type T on the
// kernel (the analogue of output.addPort<T>("name")).
func AddOutput[T any](k Kernel, name string) *Port {
	p := newPort[T](name, Out)
	k.kernelBase().addPort(p)
	return p
}

// kernelName returns the kernel's display name, defaulting to its Go type.
func kernelName(k Kernel) string {
	kb := k.kernelBase()
	if kb.name != "" {
		return kb.name
	}
	t := reflect.TypeOf(k)
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	return t.Name()
}
