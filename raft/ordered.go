package raft

import (
	"strconv"
)

// This file implements the paper's third ordering mode (§4.1): "Some
// applications require data to be processed in order, others are okay with
// data that is processed out of order, yet others can process the data out
// of order and re-order at some later time. RaftLib accommodates all of
// the above paradigms."
//
//   - in order:            don't replicate (default).
//   - out of order:        AsOutOfOrder  -> split/merge, any policy.
//   - out of order + re-order: AsReorderable -> deterministic round-robin
//     split and a matching round-robin merge, which restores the global
//     input order with no sequence tags at all, provided the replicated
//     kernel is 1:1 (exactly one output element per input element).
//
// The determinism argument: the split hands element i to replica i mod R;
// a 1:1 kernel emits exactly one element per input in order; the merge
// reads replicas cyclically starting at 0, so it reassembles i mod R back
// into position i.

// orderedSplit distributes single elements strictly round-robin across all
// outputs (no batching — batches would break the cyclic determinism the
// ordered merge relies on).
type orderedSplit struct {
	KernelBase
	rr int
}

func newOrderedSplitFromSpec(spec *Port, width int) *orderedSplit {
	s := &orderedSplit{}
	s.SetName("ordered-split")
	s.addPort(spec.cloneSpec("in", In))
	for i := 0; i < width; i++ {
		s.addPort(spec.cloneSpec(strconv.Itoa(i), Out))
	}
	return s
}

// Run implements Kernel.
func (s *orderedSplit) Run() Status {
	outs := s.OutPorts()
	in := s.In("in")
	out := outs[s.rr%len(outs)]
	if _, err := in.moveBlocking(in.typed, out.typed, 1); err != nil {
		return Stop
	}
	s.rr++
	return Proceed
}

// orderedMerge reads its inputs strictly round-robin, restoring the global
// order produced by orderedSplit + 1:1 kernels.
type orderedMerge struct {
	KernelBase
	rr int
}

func newOrderedMergeFromSpec(spec *Port, width int) *orderedMerge {
	m := &orderedMerge{}
	m.SetName("ordered-merge")
	for i := 0; i < width; i++ {
		m.addPort(spec.cloneSpec(strconv.Itoa(i), In))
	}
	m.addPort(spec.cloneSpec("out", Out))
	return m
}

// Run implements Kernel.
func (m *orderedMerge) Run() Status {
	ins := m.InPorts()
	in := ins[m.rr%len(ins)]
	out := m.Out("out")
	if _, err := in.moveBlocking(in.typed, out.typed, 1); err != nil {
		// The cyclically-next input is exhausted: with round-robin
		// distribution every input at or after this cyclic position holds
		// no more elements, so the whole group is drained.
		return Stop
	}
	m.rr++
	return Proceed
}

// rewriteOrdered rewrites u -> k -> v into
//
//	u -> ordered-split -> {k, clones...} -> ordered-merge -> v
//
// preserving global element order. The group has a fixed width (the
// monitor cannot change the replica count without breaking the cyclic
// determinism), so no Scaler is registered.
func (m *Map) rewriteOrdered(k Kernel, inbound, outbound *Link, width int) error {
	kb := k.kernelBase()
	inPort := kb.inPorts[kb.inNames[0]]
	outPort := kb.outPorts[kb.outNames[0]]
	split := newOrderedSplitFromSpec(inPort, width)
	split.SetName("ordered-split(" + kb.Name() + ")")
	merge := newOrderedMergeFromSpec(outPort, width)
	merge.SetName("ordered-merge(" + kb.Name() + ")")

	clones := make([]Kernel, width)
	clones[0] = k
	for i := 1; i < width; i++ {
		dup, err := duplicateKernel(k)
		if err != nil {
			return err
		}
		dup.kernelBase().SetName(kb.Name() + "[" + strconv.Itoa(i) + "]")
		clones[i] = dup
	}
	// The cyclic split/merge discipline is position-dependent; rewriting
	// any part of the group would break determinism.
	split.kernelBase().rigid = true
	merge.kernelBase().rigid = true
	for _, c := range clones {
		c.kernelBase().rigid = true
	}

	m.removeLink(inbound)
	m.removeLink(outbound)
	if _, err := m.Link(inbound.Src, split,
		From(inbound.SrcPort.name), To("in"),
		Cap(inbound.capacity), MaxCap(inbound.maxCap)); err != nil {
		return err
	}
	for i, c := range clones {
		if _, err := m.Link(split, c,
			From(strconv.Itoa(i)), To(c.kernelBase().inNames[0]),
			Cap(inbound.capacity), MaxCap(inbound.maxCap)); err != nil {
			return err
		}
		if _, err := m.Link(c, merge,
			From(c.kernelBase().outNames[0]), To(strconv.Itoa(i)),
			Cap(outbound.capacity), MaxCap(outbound.maxCap)); err != nil {
			return err
		}
	}
	_, err := m.Link(merge, outbound.Dst,
		From("out"), To(outbound.DstPort.name),
		Cap(outbound.capacity), MaxCap(outbound.maxCap))
	return err
}
