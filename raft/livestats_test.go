package raft

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObserverReceivesSnapshots(t *testing.T) {
	var mu sync.Mutex
	var snaps []LiveStats
	m := NewMap()
	work := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
		v, err := Pop[int64](k.In("0"))
		if err != nil {
			return Stop
		}
		time.Sleep(50 * time.Microsecond) // keep the app alive a few ticks
		if err := Push(k.Out("0"), v); err != nil {
			return Stop
		}
		return Proceed
	})
	sink := newCollect()
	if _, err := m.Link(newGen(100), work); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	_, err := m.Exe(WithObserver(2*time.Millisecond, func(s LiveStats) {
		mu.Lock()
		snaps = append(snaps, s)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("observer never invoked")
	}
	final := snaps[len(snaps)-1]
	if len(final.Links) != 2 || len(final.Kernels) != 3 {
		t.Fatalf("final snapshot: %d links, %d kernels", len(final.Links), len(final.Kernels))
	}
	// The final snapshot (taken at Stop) must reflect the completed run.
	var totalPops uint64
	for _, l := range final.Links {
		totalPops += l.Pops
	}
	if totalPops != 200 {
		t.Fatalf("final pops = %d, want 200", totalPops)
	}
	for _, k := range final.Kernels {
		if k.Runs == 0 {
			t.Fatalf("kernel %s shows zero runs in final snapshot", k.Name)
		}
	}
	if final.Elapsed <= 0 {
		t.Fatal("no elapsed in snapshot")
	}
}

func TestObserverIntervalClamped(t *testing.T) {
	cfg := defaultConfig()
	WithObserver(0, func(LiveStats) {})(&cfg)
	if cfg.ObserveEvery < time.Millisecond {
		t.Fatalf("interval = %v, want clamped to >= 1ms", cfg.ObserveEvery)
	}
}

func TestReportStringAndDot(t *testing.T) {
	m := NewMap()
	work := newWork()
	sink := newCollect()
	if _, err := m.Link(newGen(1000), work, AsOutOfOrder()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithAutoReplicate(2))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"kernels (", "streams (", "replicated groups", "split(", "merge("} {
		if !strings.Contains(s, want) {
			t.Fatalf("report rendering missing %q:\n%s", want, s)
		}
	}
	dot := m.Dot()
	for _, want := range []string{"digraph raft", "->", "split", "merge"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestTraceRecordsAndRenders(t *testing.T) {
	m := NewMap()
	work := newWork()
	sink := newCollect()
	if _, err := m.Link(newGen(500), work); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithTrace(4096))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("no trace recorder on report")
	}
	spans := rep.Trace.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	out := rep.Trace.Timeline(TraceNames(rep), 40)
	for _, name := range []string{"genKernel", "workKernel", "collectKernel"} {
		if !strings.Contains(out, name) {
			t.Fatalf("timeline missing %s:\n%s", name, out)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	_, rep := runSumApp(t, 10)
	if rep.Trace != nil {
		t.Fatal("trace must be opt-in")
	}
}
