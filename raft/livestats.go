package raft

import (
	"time"

	"raftlib/internal/core"
	"raftlib/internal/qmodel"
	"raftlib/internal/scheduler"
	"raftlib/internal/stats"
	"raftlib/internal/trace"
)

// LiveStats is one point-in-time snapshot of a running application,
// delivered to the observer installed with WithObserver. This is the
// user-facing half of the paper's §4.1 monitoring claim: "the user has
// access to monitor useful things such as queue size, current kernel
// configuration as they are updated by the run-time. In addition ... mean
// queue occupancy, service rate, throughput, queue occupancy histograms."
type LiveStats struct {
	// At is the snapshot timestamp.
	At time.Time
	// Elapsed is the time since execution started.
	Elapsed time.Duration
	// Links holds one entry per stream.
	Links []LiveLink
	// Kernels holds one entry per kernel.
	Kernels []LiveKernel
	// Flows holds per-(tenant,source) end-to-end latency snapshots from
	// retired markers (empty until the first marker completes its journey;
	// always empty under WithoutLatencyMarkers).
	Flows []LiveFlow
	// Sched holds the scheduler's activity counters so far (nil under the
	// default goroutine-per-kernel scheduler, which has none to report).
	Sched *scheduler.Stats
}

// LiveFlow is one flow's end-to-end latency so far.
type LiveFlow struct {
	// Tenant is empty for flows that never crossed the gateway.
	Tenant string
	Source string
	// Retired counts completed markers; P50 and P99 are e2e latency
	// quantile upper bounds over all of them.
	Retired  uint64
	P50, P99 time.Duration
}

// LiveLink is the instantaneous state of one stream.
type LiveLink struct {
	Name          string
	Len           int
	Cap           int
	Pushes        uint64
	Pops          uint64
	MeanOccupancy float64
	// OccP50 and OccP99 are occupancy quantile upper bounds from the
	// ring's per-push log2 histogram (elements buffered at push time).
	OccP50, OccP99 uint64
	// SpinYields and SpinSleeps count back-off escalations on lock-free
	// links — the live contention signal.
	SpinYields, SpinSleeps uint64
	// Dropped counts elements shed so far by the best-effort overflow
	// policy (zero on backpressure links).
	Dropped uint64
	// Batch is the adaptive batcher's current transfer size for the link
	// (0 = no decision yet / batching disabled).
	Batch int
	// LambdaHat, MuHat and RhoHat are the online arrival-rate, drain-rate
	// and utilization estimates for the link (elements/s; zero unless
	// WithServiceRateControl is active and the estimates have primed).
	LambdaHat, MuHat, RhoHat float64
}

// LiveKernel is the instantaneous state of one kernel.
type LiveKernel struct {
	Name string
	Runs uint64
	// MeanSvcNanos is the mean Run duration so far.
	MeanSvcNanos float64
	// SvcP99Nanos is the 99th-percentile Run duration upper bound so far.
	SvcP99Nanos uint64
	// RatePerSec is the invocation rate implied by the mean service time.
	RatePerSec float64
	// Restarts counts supervised recoveries of the kernel so far.
	Restarts uint64
	// MuHat is the online non-blocking service-rate estimate µ̂
	// (elements/s; zero unless WithServiceRateControl is active and the
	// estimate has primed). RatePerSec is achieved throughput; µ̂ is
	// predicted unblocked capacity.
	MuHat float64
}

// Observer receives periodic LiveStats while the application runs. It is
// called from a dedicated goroutine; implementations must not block for
// long (snapshots are dropped, not queued, while the observer runs).
type Observer func(LiveStats)

// WithObserver installs a live-statistics observer invoked every interval
// for the duration of Exe (intervals below 1ms are clamped).
func WithObserver(interval time.Duration, fn Observer) Option {
	return func(c *Config) {
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		c.ObserveEvery = interval
		c.Observer = fn
	}
}

// statsStreamer periodically snapshots the engine state for the observer.
type statsStreamer struct {
	interval time.Duration
	fn       Observer
	links    []*core.LinkInfo
	actors   []*core.Actor
	est      *qmodel.Estimator
	dom      *trace.MarkerDomain
	sched    scheduler.StatsReporter
	start    time.Time
	stop     chan struct{}
	done     chan struct{}
}

func startStatsStreamer(interval time.Duration, fn Observer, links []*core.LinkInfo, actors []*core.Actor, est *qmodel.Estimator, dom *trace.MarkerDomain, sched scheduler.StatsReporter) *statsStreamer {
	s := &statsStreamer{
		interval: interval,
		fn:       fn,
		links:    links,
		actors:   actors,
		est:      est,
		dom:      dom,
		sched:    sched,
		start:    time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *statsStreamer) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			// One final snapshot so the observer sees the end state.
			s.fn(s.snapshot())
			return
		case <-t.C:
			s.fn(s.snapshot())
		}
	}
}

func (s *statsStreamer) snapshot() LiveStats {
	now := time.Now()
	ls := LiveStats{At: now, Elapsed: now.Sub(s.start)}
	for i, l := range s.links {
		tel := l.Queue.Telemetry().Snapshot()
		ll := LiveLink{
			Name:          l.Name,
			Len:           l.Queue.Len(),
			Cap:           l.Queue.Cap(),
			Pushes:        tel.Pushes,
			Pops:          tel.Pops,
			MeanOccupancy: l.Occupancy.Mean(),
			OccP50:        stats.LogQuantile(tel.Occupancy[:], 0.50),
			OccP99:        stats.LogQuantile(tel.Occupancy[:], 0.99),
			SpinYields:    tel.SpinYields,
			SpinSleeps:    tel.SpinSleeps,
			Dropped:       tel.Dropped,
			Batch:         l.Batch.Get(),
		}
		if s.est != nil {
			if r, ok := s.est.Link(i); ok && r.Primed {
				ll.LambdaHat, ll.MuHat, ll.RhoHat = r.Lambda, r.Mu, r.Rho
			}
		}
		ls.Links = append(ls.Links, ll)
	}
	for _, a := range s.actors {
		lk := LiveKernel{
			Name:         a.Name,
			Runs:         a.Service.Count(),
			MeanSvcNanos: a.Service.MeanNanos(),
			SvcP99Nanos:  a.Service.Quantile(0.99),
			RatePerSec:   a.Service.RatePerSecond(),
			Restarts:     a.Restarts.Load(),
		}
		if s.est != nil {
			if r, ok := s.est.Kernel(int32(a.ID)); ok && r.Primed {
				lk.MuHat = r.MuElems
			}
		}
		ls.Kernels = append(ls.Kernels, lk)
	}
	if s.sched != nil {
		ss := s.sched.SchedStats()
		ls.Sched = &ss
	}
	if s.dom != nil {
		for _, f := range s.dom.Flows() {
			ls.Flows = append(ls.Flows, LiveFlow{
				Tenant:  f.Tenant,
				Source:  f.Source,
				Retired: f.Count,
				P50:     f.Quantile(0.50),
				P99:     f.Quantile(0.99),
			})
		}
	}
	return ls
}

func (s *statsStreamer) Stop() {
	close(s.stop)
	<-s.done
}
