package raft

import (
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMarkersRetireEndToEnd(t *testing.T) {
	m := NewMap()
	work := newWork()
	sink := newCollect()
	if _, err := m.Link(newGen(20000), work); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithLatencyMarkers(16))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sink.values()); got != 20000 {
		t.Fatalf("delivered %d elements, want 20000 (markers perturbed the stream)", got)
	}
	lat := rep.Latency
	if lat == nil {
		t.Fatal("report carries no latency section with markers on")
	}
	if lat.Stride != 16 {
		t.Fatalf("stride = %d, want 16", lat.Stride)
	}
	if lat.Retired == 0 {
		t.Fatal("no markers retired")
	}
	if len(lat.Flows) != 1 || lat.Flows[0].Count != lat.Retired {
		t.Fatalf("flows = %+v, want one flow with count %d", lat.Flows, lat.Retired)
	}
	if lat.Flows[0].SumNs <= 0 || lat.Flows[0].Quantile(0.99) <= 0 {
		t.Fatalf("flow latency not measured: %+v", lat.Flows[0])
	}
	// Both hops of the two-link pipeline must attribute residence.
	if len(lat.Stages) != 2 {
		t.Fatalf("stages = %+v, want 2 hops", lat.Stages)
	}
	for _, s := range lat.Stages {
		if s.Count == 0 {
			t.Fatalf("stage %q saw no hops", s.Stage)
		}
	}
}

func TestMarkersOnByDefault(t *testing.T) {
	// More than DefaultMarkerStride elements, no options: markers must be
	// on and at least one must complete the journey.
	m := NewMap()
	sink := newCollect()
	if _, err := m.Link(newGen(3*DefaultMarkerStride), sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency == nil || rep.Latency.Retired == 0 {
		t.Fatalf("latency = %+v, want markers retired by default", rep.Latency)
	}
}

func TestMarkersDisabled(t *testing.T) {
	m := NewMap()
	sink := newCollect()
	if _, err := m.Link(newGen(5000), sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithoutLatencyMarkers())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency != nil {
		t.Fatalf("latency = %+v, want none with markers disabled", rep.Latency)
	}
	if got := len(sink.values()); got != 5000 {
		t.Fatalf("delivered %d, want 5000", got)
	}
}

// healthzPoller probes /healthz from the observer callback, capturing the
// first mid-run response.
type healthzPoller struct {
	addr string
	mu   sync.Mutex
	code int
	body string
}

func (h *healthzPoller) observe(LiveStats) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.code != 0 {
		return
	}
	c := &http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get("http://" + h.addr + "/healthz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	h.code, h.body = resp.StatusCode, string(b)
}

func TestHealthzDuringRun(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	poller := &healthzPoller{addr: ln.Addr().String()}

	m := NewMap()
	work := newWork()
	sink := newCollect()
	if _, err := m.Link(newGen(200000), work); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(
		WithMetricsListener(ln),
		WithTrace(1<<14),
		WithObserver(1_000_000, poller.observe), // 1ms
	); err != nil {
		t.Fatal(err)
	}

	poller.mu.Lock()
	code, body := poller.code, poller.body
	poller.mu.Unlock()
	if code == 0 {
		t.Fatal("no /healthz probe landed during the run")
	}
	if code != http.StatusOK {
		t.Fatalf("mid-run /healthz = %d, want 200 (body %q)", code, body)
	}
	if !strings.Contains(body, `"state":"running"`) {
		t.Fatalf("mid-run /healthz body = %q, want state running", body)
	}
	if !strings.Contains(body, "lastTraceEventAgeNs") {
		t.Fatalf("/healthz body lacks trace-age field: %q", body)
	}
}
