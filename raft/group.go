package raft

import (
	"fmt"
	"math"
)

// KernelGroup is a set of synonymous kernels — alternative implementations
// of the same port signature — that the runtime swaps between to optimize
// the computation (§4.2: "RaftLib gives the user the ability to specify
// synonymous kernel groupings that the run-time can swap out to optimize
// the computation ... a version of the UNIX utility grep could be
// implemented with multiple search algorithms").
//
// The group itself is the kernel that joins the topology; all member
// implementations share its streams. Selection is measurement-driven: each
// member is exercised for a warm-up window, then the member with the best
// observed service rate runs, with periodic re-exploration to adapt to
// input drift. SetFixed pins a member and disables swapping (the paper's
// benchmarking mode: "this was disabled for this benchmark so we could
// more easily compare specific algorithms").
type KernelGroup struct {
	KernelBase
	members []Kernel
	labels  []string

	active   int
	fixed    bool
	warmRuns int   // per-member warm-up invocations
	window   int   // invocations between re-evaluations
	runs     int   // total invocations
	busy     []int // accumulated ns per member
	count    []int // invocations per member
	swaps    int
}

// NewKernelGroup builds a group from one or more member kernels. Every
// member must declare exactly the same ports (names, directions and
// element types) — the group's signature is taken from the first member.
func NewKernelGroup(members ...Kernel) (*KernelGroup, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("raft: kernel group needs at least one member")
	}
	g := &KernelGroup{
		members:  members,
		warmRuns: 32,
		window:   512,
		busy:     make([]int, len(members)),
		count:    make([]int, len(members)),
	}
	first := members[0].kernelBase()
	for _, mk := range members {
		g.labels = append(g.labels, kernelName(mk))
	}
	// Validate signatures and mirror the first member's ports onto the
	// group.
	for _, name := range first.inNames {
		g.addPort(first.inPorts[name].cloneSpec(name, In))
	}
	for _, name := range first.outNames {
		g.addPort(first.outPorts[name].cloneSpec(name, Out))
	}
	for i, mk := range members[1:] {
		if err := sameSignature(first, mk.kernelBase()); err != nil {
			return nil, fmt.Errorf("raft: group member %d (%s): %w", i+1, kernelName(mk), err)
		}
	}
	g.SetName("group[" + g.labels[0] + "...]")
	return g, nil
}

func sameSignature(a, b *KernelBase) error {
	if len(a.inNames) != len(b.inNames) || len(a.outNames) != len(b.outNames) {
		return fmt.Errorf("port count differs")
	}
	for _, n := range a.inNames {
		bp, ok := b.inPorts[n]
		if !ok || bp.elem != a.inPorts[n].elem {
			return fmt.Errorf("input port %q differs", n)
		}
	}
	for _, n := range a.outNames {
		bp, ok := b.outPorts[n]
		if !ok || bp.elem != a.outPorts[n].elem {
			return fmt.Errorf("output port %q differs", n)
		}
	}
	return nil
}

// SetFixed pins the group to the named member and disables dynamic
// swapping. It returns an error if no member has that name.
func (g *KernelGroup) SetFixed(label string) error {
	for i, l := range g.labels {
		if l == label {
			g.active = i
			g.fixed = true
			return nil
		}
	}
	return fmt.Errorf("raft: group has no member %q (have %v)", label, g.labels)
}

// Members returns the member labels in order.
func (g *KernelGroup) Members() []string { return append([]string(nil), g.labels...) }

// Active returns the label of the member currently selected.
func (g *KernelGroup) Active() string { return g.labels[g.active] }

// Swaps returns how many times the group changed its active member.
func (g *KernelGroup) Swaps() int { return g.swaps }

// Init propagates the group's stream bindings into every member so they
// all read and write the same queues; the scheduler calls it before the
// first Run.
func (g *KernelGroup) Init() error {
	for _, mk := range g.members {
		mb := mk.kernelBase()
		for _, n := range g.inNames {
			p := g.inPorts[n]
			mb.inPorts[n].bind(p.q, p.typed, p.async)
		}
		for _, n := range g.outNames {
			p := g.outPorts[n]
			mb.outPorts[n].bind(p.q, p.typed, p.async)
		}
		if init, ok := mk.(Initializer); ok {
			if err := init.Init(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Finalize forwards finalization to every member.
func (g *KernelGroup) Finalize() {
	for _, mk := range g.members {
		if fin, ok := mk.(Finalizer); ok {
			fin.Finalize()
		}
	}
}

// Run delegates to the active member, accounting its service time and
// periodically reconsidering which member is fastest.
func (g *KernelGroup) Run() Status {
	idx := g.active
	if !g.fixed && len(g.members) > 1 {
		idx = g.choose()
	}
	start := nanotime()
	st := g.members[idx].Run()
	g.busy[idx] += int(nanotime() - start)
	g.count[idx]++
	g.runs++
	return st
}

// choose implements the measure-then-exploit policy.
func (g *KernelGroup) choose() int {
	n := len(g.members)
	warm := g.warmRuns * n
	if g.runs < warm {
		return g.runs % n // round-robin warm-up
	}
	// Re-evaluate at the end of warm-up and then every window invocations.
	if g.runs == warm || g.runs%g.window == 0 {
		best := g.bestMember()
		if best != g.active {
			g.active = best
			g.swaps++
		}
	}
	// Occasional exploration of non-active members keeps the measurements
	// fresh under drifting inputs.
	if g.runs%257 == 0 {
		return (g.active + g.runs/257) % n
	}
	return g.active
}

// bestMember returns the member with the lowest mean service time.
func (g *KernelGroup) bestMember() int {
	best, bestMean := g.active, math.Inf(1)
	for i := range g.members {
		if g.count[i] == 0 {
			return i // never measured: try it
		}
		mean := float64(g.busy[i]) / float64(g.count[i])
		if mean < bestMean {
			best, bestMean = i, mean
		}
	}
	return best
}
