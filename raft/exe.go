package raft

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"raftlib/internal/core"
	"raftlib/internal/gateway"
	"raftlib/internal/graph"
	"raftlib/internal/mapper"
	"raftlib/internal/monitor"
	"raftlib/internal/qmodel"
	"raftlib/internal/resilience"
	"raftlib/internal/ringbuffer"
	"raftlib/internal/scheduler"
	"raftlib/internal/stats"
	"raftlib/internal/trace"
)

// Config holds the runtime parameters Exe uses; construct it through
// Options.
type Config struct {
	// DefaultCapacity is the initial capacity of streams without an
	// explicit WithCapacity (default 64 elements).
	DefaultCapacity int
	// MaxCapacity bounds monitor growth for streams without an explicit
	// WithMaxCapacity (default 1<<20 elements; 0 = unbounded).
	MaxCapacity int
	// LockFree selects lock-free SPSC queues instead of mutex rings for
	// every stream. Window (PeekRange) access is unavailable on SPSC
	// links; the monitor still resizes them (epoch swap) when
	// DynamicResize is on.
	LockFree bool

	// PoolWorkers > 0 selects the worker-pool scheduler with that many
	// workers; 0 selects the default goroutine-per-kernel scheduler.
	PoolWorkers int

	// WorkStealing selects the sharded work-stealing scheduler (per-worker
	// deques, park/wake on queue transitions, locality-aware placement)
	// with StealWorkers workers (0 = GOMAXPROCS). Takes precedence over
	// PoolWorkers.
	WorkStealing bool
	StealWorkers int

	// MonitorEnabled runs the δ-tick monitor thread (default true).
	MonitorEnabled bool
	// MonitorDelta is the monitor period δ (default 10µs, per the paper).
	MonitorDelta time.Duration
	// DynamicResize enables the monitor's queue-resizing rules (default
	// true).
	DynamicResize bool
	// Shrink additionally allows the monitor to shrink over-provisioned
	// queues (default false; conservative).
	Shrink bool
	// AdaptiveBatch enables the monitor's adaptive batcher: transfer batch
	// sizes on each link grow under contention and shrink when a stream
	// runs empty, steering the batched stream path toward a
	// latency/throughput balance (default false).
	AdaptiveBatch bool
	// BatchMax caps the batch size the adaptive batcher may choose for any
	// link (default monitor.DefaultBatchMax; each link is further capped at
	// half its queue capacity).
	BatchMax int

	// AutoReplicate rewrites eligible kernels (Cloner + single in/out +
	// inbound link marked AsOutOfOrder) into split/replicas/merge groups.
	AutoReplicate bool
	// MaxReplicas is the replica ceiling for auto-replicated kernels
	// (default GOMAXPROCS).
	MaxReplicas int
	// AutoScale starts each replicated group at one active replica and
	// lets the monitor widen it on observed back-pressure; when false the
	// group runs at full width from the start.
	AutoScale bool
	// SplitPolicy selects the data distribution strategy for replicated
	// groups.
	SplitPolicy SplitPolicy

	// Topology is the compute-place model for the mapper (default: one
	// machine, GOMAXPROCS cores, one socket).
	Topology mapper.Topology

	// Observer, when non-nil, receives LiveStats every ObserveEvery while
	// the application runs (see WithObserver).
	Observer     Observer
	ObserveEvery time.Duration

	// DeadlockGrace, when positive, makes the monitor abort a globally
	// frozen application after this duration instead of hanging (see
	// WithDeadlockDetection).
	DeadlockGrace time.Duration

	// TraceCapacity, when positive, records kernel start/end events into
	// a bounded ring exposed on the Report (see WithTrace).
	TraceCapacity int

	// TraceStride samples kernel Run spans: one invocation in every
	// TraceStride emits RunStart/RunEnd (1 = every invocation; 0 = the
	// DefaultTraceStride). Structural events are never sampled.
	TraceStride int

	// MarkerStride samples end-to-end latency markers: one element in
	// every MarkerStride pushed by each ingest port (source kernels and
	// gateway bindings) carries a provenance marker that accumulates
	// per-stage queue/kernel residence and retires into latency histograms
	// at a sink. 0 selects DefaultMarkerStride (markers are on by
	// default); negative disables marker carriage entirely.
	MarkerStride int
	// SLO, when positive, is the end-to-end latency objective: a retired
	// marker whose ingest-to-sink latency exceeds it emits an SLOBreach
	// event on the trace bus and (when armed) triggers the flight
	// recorder (see WithLatencySLO).
	SLO time.Duration
	// FlightPath, when non-empty, arms the anomaly-triggered flight
	// recorder dumping into <FlightPath>.flightdump/ (see
	// WithFlightRecorder).
	FlightPath string

	// ServiceRateControl switches the monitor's batcher and replica scaler
	// from contended-window heuristics to decisions driven by online λ̂/µ̂
	// estimates (see WithServiceRateControl).
	ServiceRateControl bool

	// MetricsAddr, when non-empty, serves Prometheus text-format metrics
	// (and net/http/pprof) on that address for the duration of the run
	// (see WithMetricsAddr). MetricsListener takes precedence when set:
	// the caller owns the listener and therefore knows its address.
	MetricsAddr     string
	MetricsListener net.Listener

	// Supervised wraps every kernel in a restart supervisor (see
	// WithSupervision / WithCheckpoints).
	Supervised bool
	// Supervision is the restart policy for supervised kernels (zero value
	// = defaults).
	Supervision SupervisionPolicy
	// CkptStore persists Checkpointable kernel snapshots; nil with a
	// non-empty CkptDir selects a file store over that directory, and nil
	// otherwise selects an in-memory store.
	CkptStore CheckpointStore
	// CkptDir is the file-backed checkpoint directory (see WithCheckpoints).
	CkptDir string
	// CkptEvery is the snapshot period in successful invocations (default 1).
	CkptEvery uint64
	// Fault is the armed fault-injection plan, if any (see
	// WithFaultInjection).
	Fault *FaultInjector

	// Gateway, when non-nil, is the multi-tenant ingestion front door wired
	// to this run's source kernels (see WithGateway). Exe binds each
	// registered source to its link, starts the gateway's listeners for the
	// duration of the run, and stops them before returning.
	Gateway *gateway.Server

	// resLog collects supervision events during one Exe for the Report.
	resLog *resilience.Log
	// resStore is the resolved checkpoint store for this execution; set by
	// wireResilience, or lazily by the template manager so scale-to-zero
	// reaping can checkpoint instances even in unsupervised runs.
	resStore CheckpointStore
	// markers is this execution's latency-marker rig (domain + bus), built
	// from MarkerStride; flight is the armed flight recorder, if any.
	markers *markerRig
	flight  *trace.FlightRecorder
}

func defaultConfig() Config {
	return Config{
		DefaultCapacity: 64,
		MaxCapacity:     1 << 20,
		MonitorEnabled:  true,
		MonitorDelta:    monitor.DefaultDelta,
		DynamicResize:   true,
		MaxReplicas:     runtime.GOMAXPROCS(0),
	}
}

// Option customizes Exe.
type Option func(*Config)

// WithDefaultCapacity sets the initial capacity for streams without an
// explicit per-link capacity.
func WithDefaultCapacity(n int) Option { return func(c *Config) { c.DefaultCapacity = n } }

// WithMaxCapacity sets the default growth bound for dynamic streams.
func WithMaxCapacity(n int) Option { return func(c *Config) { c.MaxCapacity = n } }

// WithLockFreeQueues selects lock-free SPSC streams for every link (no
// window access) — the fast-ring configuration of the A2 ablation.
// Since the epoch swap the monitor's dynamic resizing applies to these
// streams too; combine with WithDynamicResize(false) for truly fixed
// capacities. Per-link selection is AsLockFree.
func WithLockFreeQueues() Option { return func(c *Config) { c.LockFree = true } }

// WithPoolScheduler multiplexes kernels over n worker goroutines instead of
// one goroutine per kernel (the A4 ablation configuration).
func WithPoolScheduler(n int) Option { return func(c *Config) { c.PoolWorkers = n } }

// WithWorkStealing multiplexes kernels over n worker shards (0 =
// GOMAXPROCS) under the sharded work-stealing scheduler: each worker owns
// a ready deque (LIFO local pop, batched FIFO steal), a kernel that
// returns Stall parks until one of its streams transitions
// empty→non-empty or full→non-full instead of being polled, and shard
// assignment follows the mapper's placement so producer/consumer pairs
// stay on one shard while links that still cross shards get a wider
// initial transfer batch. Steal/park/wake activity lands in
// Report.Sched, LiveStats and the Prometheus counters (the A17 ablation
// configuration).
func WithWorkStealing(n int) Option {
	return func(c *Config) { c.WorkStealing = true; c.StealWorkers = n }
}

// WithoutMonitor disables the runtime monitor entirely (A5 ablation).
func WithoutMonitor() Option { return func(c *Config) { c.MonitorEnabled = false } }

// WithMonitorDelta sets the monitor tick period δ.
func WithMonitorDelta(d time.Duration) Option { return func(c *Config) { c.MonitorDelta = d } }

// WithDynamicResize enables or disables the monitor's queue resizing.
func WithDynamicResize(on bool) Option { return func(c *Config) { c.DynamicResize = on } }

// WithShrink allows the monitor to shrink over-provisioned queues.
func WithShrink(on bool) Option { return func(c *Config) { c.Shrink = on } }

// WithAdaptiveBatching lets the monitor tune each link's transfer batch
// size from observed occupancy and blocking: contended links batch more
// (amortizing per-element synchronization), links that run empty batch
// less (keeping latency low). Links marked AsLowLatency are pinned at
// batch size 1 and never touched. Requires the monitor (the default).
func WithAdaptiveBatching(on bool) Option { return func(c *Config) { c.AdaptiveBatch = on } }

// WithBatchMax caps the batch size the adaptive batcher may choose.
func WithBatchMax(n int) Option { return func(c *Config) { c.BatchMax = n } }

// WithAutoReplicate enables automatic kernel replication with the given
// replica ceiling (0 = GOMAXPROCS).
func WithAutoReplicate(maxReplicas int) Option {
	return func(c *Config) {
		c.AutoReplicate = true
		if maxReplicas > 0 {
			c.MaxReplicas = maxReplicas
		}
	}
}

// WithAutoScale makes replicated groups start at one active replica and
// grow under monitor control instead of running at full width.
func WithAutoScale(on bool) Option { return func(c *Config) { c.AutoScale = on } }

// WithSplitPolicy selects the replica data-distribution strategy.
func WithSplitPolicy(p SplitPolicy) Option { return func(c *Config) { c.SplitPolicy = p } }

// WithTopology supplies an explicit compute-place model to the mapper.
func WithTopology(t mapper.Topology) Option { return func(c *Config) { c.Topology = t } }

// DefaultTraceStride is the Run-span sampling stride used by WithTrace:
// one kernel invocation in every DefaultTraceStride publishes its
// RunStart/RunEnd pair on the event bus. Sampling keeps the always-on
// cost of tracing a fine-grained kernel to a local counter increment;
// structural events (resize, batch, restart, bridge, checkpoint) are
// never sampled. Use WithTraceStride(1) for exhaustive span capture.
const DefaultTraceStride = 64

// WithTrace records kernel invocation start/end events into a bounded
// ring of the given capacity (events; oldest overwritten) and attaches
// the recorder to the Report, whose Trace can be rendered as an ASCII
// utilization timeline or exported as a Chrome trace — the visualization
// direction the paper leaves as future work (§4.1). Run spans are
// sampled at DefaultTraceStride; see WithTraceStride.
func WithTrace(capacity int) Option {
	return func(c *Config) {
		if capacity <= 0 {
			capacity = 1 << 16
		}
		c.TraceCapacity = capacity
	}
}

// WithTraceStride sets the Run-span sampling stride for WithTrace: one
// invocation in every n emits its RunStart/RunEnd pair. 1 records every
// invocation (maximum timeline fidelity, measurable cost on sub-µs
// kernels); larger strides trade span density for overhead.
func WithTraceStride(n int) Option {
	return func(c *Config) {
		if n < 1 {
			n = 1
		}
		c.TraceStride = n
	}
}

// DefaultMarkerStride is the latency-marker sampling stride: one element
// in every DefaultMarkerStride pushed by an ingest port carries a
// provenance marker. Sampling keeps the always-on cost to a counter
// decrement per push batch plus one pointer check per port operation;
// the stamped path (marker allocation, lane deposit/pickup, histogram
// retirement) amortizes over the stride.
const DefaultMarkerStride = 1024

// WithLatencyMarkers sets the end-to-end latency-marker sampling stride
// (1 = every element; 0 or negative selects DefaultMarkerStride). Markers
// are on by default — use WithoutLatencyMarkers to disable carriage.
func WithLatencyMarkers(stride int) Option {
	return func(c *Config) {
		if stride < 1 {
			stride = DefaultMarkerStride
		}
		c.MarkerStride = stride
	}
}

// WithoutLatencyMarkers disables latency-marker carriage for the run:
// no lanes are installed and every port operation pays exactly one nil
// check.
func WithoutLatencyMarkers() Option { return func(c *Config) { c.MarkerStride = -1 } }

// WithLatencySLO sets the end-to-end latency objective: any retired
// marker whose ingest-to-sink latency exceeds d emits an SLOBreach event
// on the trace bus, and triggers the flight recorder when one is armed.
func WithLatencySLO(d time.Duration) Option {
	return func(c *Config) {
		if d > 0 {
			c.SLO = d
		}
	}
}

// WithFlightRecorder arms the anomaly-triggered flight recorder: a
// deadlock abort, a supervisor escalation, a gateway shed storm or an
// e2e-latency SLO breach dumps the retained trace-bus events as a
// self-contained Chrome trace plus a text post-mortem (per-flow latency,
// per-stage residence, recently retired markers, last events) into
// <base>.flightdump/. The always-on state is exactly the bounded rings
// the run already keeps; a 64Ki-event trace ring is enabled
// automatically when WithTrace was not given.
func WithFlightRecorder(base string) Option {
	return func(c *Config) {
		if base == "" {
			base = "raft"
		}
		c.FlightPath = base
		if c.TraceCapacity <= 0 {
			c.TraceCapacity = 1 << 16
		}
	}
}

// WithServiceRateControl turns the monitor's reactive heuristics into a
// model-driven controller: an online estimator (internal/qmodel, after
// the instantaneous-rate model of arXiv:1504.00591) maintains per-kernel
// non-blocking service rates µ̂ from sampled Run spans and per-link
// arrival rates λ̂ from flow counters, with burst rejection filtering
// blocking-contaminated observations. The replica scaler then picks the
// group width whose predicted M/M/c waiting time meets its target
// (instead of waiting for the input queue to sit near-full), and the
// adaptive batcher grows batches when utilization ρ̂ = λ̂/µ̂ runs high or
// the occupancy derivative predicts saturation — before either side ever
// blocks. Links and groups with unprimed estimates keep the heuristics,
// so the option degrades to the default behavior rather than below it.
//
// Requires the monitor (the default) and span tracing: if WithTrace was
// not given, a 64Ki-event recorder is enabled automatically. λ̂/µ̂/ρ̂ show
// up on LiveStats, the Report, and the Prometheus endpoint.
func WithServiceRateControl() Option {
	return func(c *Config) {
		c.ServiceRateControl = true
		if c.TraceCapacity <= 0 {
			c.TraceCapacity = 1 << 16
		}
	}
}

// WithMetricsAddr serves Prometheus text-format metrics on addr (e.g.
// ":9090") while the application runs: per-link occupancy histograms,
// push/pop/block counters and batch sizes, per-kernel invocation counts
// and service-time histograms, replicated-group widths, and bridge
// recovery counters. net/http/pprof is mounted on the same listener under
// /debug/pprof/. The listener is closed when Exe returns.
func WithMetricsAddr(addr string) Option { return func(c *Config) { c.MetricsAddr = addr } }

// WithMetricsListener is WithMetricsAddr with a caller-owned listener —
// the form tests use, since the caller knows the bound address. Exe closes
// the listener when the run ends.
func WithMetricsListener(l net.Listener) Option {
	return func(c *Config) { c.MetricsListener = l }
}

// TraceAttacher is implemented by kernels that run their own event loops
// (e.g. oar bridge endpoints) and want to publish lifecycle transitions on
// the run's trace bus. Exe calls AttachTrace before scheduling when
// WithTrace is active.
type TraceAttacher interface {
	AttachTrace(rec *trace.Recorder, actor int32)
}

// WithDeadlockDetection makes the monitor detect a globally frozen
// application — every unfinished kernel parked on a stream with no
// progress for the grace period — and abort it with a diagnostic error
// naming the parked streams, instead of hanging forever. Requires the
// monitor (the default); conservative: long computations and polling
// adapters never trigger it.
func WithDeadlockDetection(grace time.Duration) Option {
	return func(c *Config) {
		if grace <= 0 {
			grace = time.Second
		}
		c.DeadlockGrace = grace
	}
}

// Report summarizes one execution: what ran where, how each stream behaved,
// and what the monitor changed along the way.
type Report struct {
	// Elapsed is the wall-clock execution time (allocation to completion).
	Elapsed time.Duration
	// Scheduler names the scheduler used.
	Scheduler string
	// Kernels holds one entry per executed kernel (including runtime
	// adapters and replicas).
	Kernels []KernelReport
	// Links holds one entry per stream.
	Links []LinkReport
	// MonitorTicks is the number of monitor iterations.
	MonitorTicks uint64
	// MonitorEvents lists the monitor's resize and scaling decisions.
	MonitorEvents []monitor.Event
	// Groups reports the final active width of each replicated group.
	Groups []GroupReport
	// CutCost is the mapper's latency-weighted cost of streams crossing
	// place boundaries.
	CutCost time.Duration
	// Trace holds the kernel invocation recorder when WithTrace was set;
	// render it with Trace.Timeline(TraceNames(report), width).
	Trace *trace.Recorder
	// Recoveries lists every supervised restart (and terminal failure)
	// observed during the execution, in order.
	Recoveries []RecoveryEvent
	// Bridges reports recovery counters of self-healing remote streams.
	Bridges []BridgeReport
	// MetricsAddr is the address the Prometheus endpoint was bound to
	// during the run (empty unless WithMetricsAddr/WithMetricsListener).
	// The endpoint itself is closed by the time Exe returns.
	MetricsAddr string
	// Gateway summarizes ingestion-gateway admission activity (per-tenant
	// admitted/shed counts, per-source drops); nil unless WithGateway.
	Gateway *GatewayReport
	// Latency is the end-to-end latency provenance summary: per-flow
	// (tenant/source) latency distributions and per-stage residence
	// attribution folded from retired markers. Nil when latency markers
	// are disabled (WithoutLatencyMarkers).
	Latency *LatencyReport
	// Sched holds the scheduler's activity counters (steals, parks, wakes,
	// stalled passes). Nil under the default goroutine-per-kernel
	// scheduler, which delegates entirely to the Go runtime and has no
	// counters of its own.
	Sched *SchedReport
}

// SchedReport is the scheduler-activity section of a Report, populated by
// the pool and work-stealing schedulers.
type SchedReport struct {
	// Workers is the number of scheduler worker goroutines.
	Workers int
	// Steals counts successful steal operations; StolenTasks the kernels
	// migrated by them (a steal moves up to StealBatch tasks).
	Steals, StolenTasks uint64
	// Parks counts kernel park transitions (kernel stalled and was
	// descheduled until a link readiness hook fired); Wakes counts
	// hook-driven unparks and Rescues watchdog-driven ones.
	Parks, Wakes, Rescues uint64
	// StalledPasses counts scheduling passes that made no progress.
	StalledPasses uint64
	// CrossShardLinks is the number of links whose endpoints the placement
	// pass put on different shards (these links get a batch hint to
	// amortize the cross-shard transfer).
	CrossShardLinks int
}

// LatencyReport summarizes the run's retired latency markers.
type LatencyReport struct {
	// Stride is the marker sampling stride in effect.
	Stride int
	// Retired is the number of markers that completed the ingest-to-sink
	// journey.
	Retired uint64
	// Flows holds per-(tenant,source) e2e latency distributions.
	Flows []trace.FlowStats
	// Stages holds per-stage residence attribution (time-in-queue vs
	// time-in-kernel), sorted by total residence descending.
	Stages []trace.StageStats
	// FlightDir and FlightDumps describe the flight recorder, when armed.
	FlightDir   string
	FlightDumps uint64
}

// TraceNames returns the kernel names indexed by trace kernel id for
// Report.Trace.Timeline.
func TraceNames(r *Report) []string {
	names := make([]string, len(r.Kernels))
	for i, k := range r.Kernels {
		names[i] = k.Name
	}
	return names
}

// KernelReport is the per-kernel slice of a Report.
type KernelReport struct {
	Name         string
	Place        int
	Runs         uint64
	MeanSvcNanos float64
	// SvcP50Nanos and SvcP99Nanos are service-time quantile upper bounds
	// from the kernel's log2 histogram.
	SvcP50Nanos uint64
	SvcP99Nanos uint64
	BusyNanos   uint64
	RatePerSec  float64
	// Restarts counts supervised recoveries of this kernel.
	Restarts uint64
	// MuHat is the online non-blocking service-rate estimate µ̂
	// (elements/s) at end of run; 0 unless WithServiceRateControl. Unlike
	// RatePerSec (achieved throughput, depressed by blocking), µ̂
	// approximates what the kernel could sustain if never blocked.
	MuHat float64
	// JoinedAt and LeftAt are offsets from execution start at which a
	// graph rewrite spliced the kernel in / retired it. Both zero for
	// kernels present from start to finish, so static runs are unchanged.
	JoinedAt time.Duration
	LeftAt   time.Duration
}

// LinkReport is the per-stream slice of a Report.
type LinkReport struct {
	Name string
	// Ring is the queue implementation backing the stream ("mutex" or
	// "spsc"), so reports show which links ran lock-free.
	Ring          string
	FinalCap      int
	MeanOccupancy float64
	FullFrac      float64
	StarvedFrac   float64
	Pushes        uint64
	Pops          uint64
	WriteBlockNs  uint64
	ReadBlockNs   uint64
	// Resizes counts installed capacity changes (Grows + Shrinks); on
	// lock-free links these are epoch swaps.
	Resizes uint64
	Grows   uint64
	Shrinks uint64
	// SpinYields and SpinSleeps count lock-free back-off escalations.
	SpinYields uint64
	SpinSleeps uint64
	// Dropped counts elements discarded by the best-effort overflow policy
	// (AsBestEffort). Zero on backpressure links.
	Dropped uint64
	// OccHist is the per-push log2 occupancy histogram — the paper's
	// §4.1 "queue occupancy histogram" (bucket 0 = {0,1} elements,
	// bucket i = [2^i, 2^(i+1)) elements at push time). OccP50/OccP99
	// are its quantile upper bounds.
	OccHist [ringbuffer.OccBuckets]uint64
	OccP50  uint64
	OccP99  uint64
	// Batch is the transfer batch size in effect when execution ended
	// (0 when the adaptive batcher made no decision for this link).
	Batch int
	// Views counts completed zero-copy borrow/release cycles on the
	// stream; ViewHoldNs is the cumulative wall time views were held
	// open (held views defer resizes, so a high hold time explains a
	// quiet monitor).
	Views      uint64
	ViewHoldNs uint64
	// LambdaHat, MuHat and RhoHat are the online estimator's final
	// arrival rate λ̂ (elements/s), consumer drain rate µ̂ (elements/s)
	// and utilization ρ̂ = λ̂/µ̂ for this link — the controller's inputs,
	// surfaced so its decisions are auditable. Zero unless
	// WithServiceRateControl was set (and the estimates primed).
	LambdaHat float64
	MuHat     float64
	RhoHat    float64
	// JoinedAt and LeftAt are offsets from execution start at which a
	// graph rewrite spliced the stream in / sealed and removed it. Both
	// zero for streams present from start to finish.
	JoinedAt time.Duration
	LeftAt   time.Duration
}

// GroupReport describes one replicated kernel group after execution.
type GroupReport struct {
	Name        string
	MaxReplicas int
	ActiveAtEnd int
}

// Exe executes the topology: it verifies the graph, performs the
// auto-replication rewrite, allocates every stream, maps kernels to
// places, runs them under the configured scheduler with the monitor
// optimizing dynamically, and blocks until every kernel has stopped
// (paper §4, "map.exe()"). A Map can be executed once.
func (m *Map) Exe(opts ...Option) (*Report, error) {
	ex, err := m.ExeAsync(opts...)
	if err != nil {
		return nil, err
	}
	return ex.Wait()
}

// Execution is a live run handle. ExeAsync returns one as soon as the
// graph is running; Wait blocks until every kernel has stopped and
// assembles the Report; Rewriter exposes the graph-rewrite protocol —
// transactions that add and remove kernels and links under graph epochs
// while the rest of the application keeps streaming.
type Execution struct {
	m       *Map
	cfg     *Config
	g       *graph.Graph
	assign  mapper.Assignment
	rec     *trace.Recorder
	stride  int
	mon     *monitor.Monitor
	dw      *monitor.DeadlockWatch
	est     *qmodel.Estimator
	sched   scheduler.Scheduler
	spawn   scheduler.Spawner
	ws      *scheduler.WorkSteal
	scalers []*groupScaler
	health  *execHealth
	msrv    *metricsServer
	start   time.Time

	reg  *registry
	rw   *Rewriter
	tmpl *templateSet

	done    chan struct{}
	elapsed time.Duration
	runErr  error

	repOnce sync.Once
	rep     *Report
}

// Done is closed when every kernel (including dynamically spawned ones)
// has stopped and the runtime services are torn down.
func (ex *Execution) Done() <-chan struct{} { return ex.done }

// Rewriter returns the execution's graph-rewrite handle.
func (ex *Execution) Rewriter() *Rewriter { return ex.rw }

// Wait blocks until the application completes, then builds the Report —
// the second half of Exe. Safe to call from multiple goroutines; the
// report is assembled once.
func (ex *Execution) Wait() (*Report, error) {
	<-ex.done
	ex.repOnce.Do(func() {
		actors, links := ex.reg.actorList(), ex.reg.linkInfoList()
		rep := ex.m.buildReport(ex.g, *ex.cfg, ex.assign, actors, links,
			ex.mon, ex.scalers, ex.est, ex.sched, ex.elapsed)
		rep.Trace = ex.rec
		ex.reg.stampReport(rep)
		if ex.cfg.Gateway != nil {
			rep.Gateway = gatewayReport(ex.cfg.Gateway)
		}
		if ex.msrv != nil {
			rep.MetricsAddr = ex.msrv.Addr()
			ex.msrv.Stop()
		}
		ex.rep = rep
	})
	return ex.rep, ex.runErr
}

// ExeAsync is Exe without the blocking half: it performs verification,
// the auto-replication rewrite, allocation, mapping and scheduling, then
// returns while the application runs. The handle's Rewriter can splice
// kernels and links into (and out of) the running graph; Wait completes
// the execution exactly as Exe would have.
func (m *Map) ExeAsync(opts ...Option) (*Execution, error) {
	if m.executed {
		return nil, fmt.Errorf("%w (kernels and streams are single-use; build a fresh Map)", ErrAlreadyExecuted)
	}
	m.executed = true
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.Topology.Places) == 0 {
		cfg.Topology = mapper.NewLocal(runtime.GOMAXPROCS(0), 1)
	}

	// 1. Auto-replication rewrite (before any allocation).
	var scalers []*groupScaler
	if cfg.AutoReplicate && cfg.MaxReplicas > 1 {
		var err error
		scalers, err = m.rewriteReplicated(&cfg)
		if err != nil {
			return nil, err
		}
	}

	// 2. Structural verification.
	g, err := m.buildGraph()
	if err != nil {
		return nil, err
	}
	if err := g.Verify(); err != nil {
		return nil, err
	}

	// 3. Mapping.
	assignment, err := mapper.Assign(g, cfg.Topology)
	if err != nil {
		return nil, err
	}

	// 4. Stream allocation (with the latency-marker rig, when markers are
	// on — allocate installs one lane per link and the rig on every
	// endpoint kernel).
	if cfg.MarkerStride >= 0 {
		stride := cfg.MarkerStride
		if stride == 0 {
			stride = DefaultMarkerStride
		}
		cfg.markers = &markerRig{dom: trace.NewMarkerDomain(stride)}
	}
	linkInfos, err := m.allocate(&cfg)
	if err != nil {
		return nil, err
	}
	for _, s := range scalers {
		s.attachLinks(linkInfos)
	}

	// 5. Actors.
	var rec *trace.Recorder
	if cfg.TraceCapacity > 0 {
		rec = trace.NewRecorder(cfg.TraceCapacity)
	}
	stride := cfg.TraceStride
	if stride < 1 {
		stride = DefaultTraceStride
	}
	if cfg.markers != nil {
		cfg.markers.rec = rec
	}
	actors := m.buildActors(assignment, rec, stride)
	if cfg.Fault != nil || cfg.Supervised {
		if err := m.wireResilience(&cfg, actors); err != nil {
			return nil, err
		}
	}

	// 5a. Runtime registry: the live kernel/link book the rewriter, the
	// abort pathway and the report build all read, since the static slices
	// above stop being the whole story once a rewrite commits.
	reg := newRegistry(m, actors, linkInfos, scalers)
	// Global exception pathway: a kernel Raise force-closes every stream
	// (including dynamically spliced ones) so the whole application
	// unblocks and stops.
	m.setAbort(reg.closeAllQueues)

	// 5b. Flight recorder and latency SLO. The recorder taps the trace bus
	// for anomaly kinds (deadlock, escalation, shed storm, SLO breach); a
	// breach itself is detected at marker retirement and published as an
	// SLOBreach event, so the tap sees it like any other anomaly.
	if cfg.FlightPath != "" && rec != nil {
		var dom *trace.MarkerDomain
		if cfg.markers != nil {
			dom = cfg.markers.dom
		}
		cfg.flight = trace.NewFlightRecorder(cfg.FlightPath, rec, dom)
		names := make([]string, len(actors))
		for i, a := range actors {
			names[i] = a.Name
		}
		cfg.flight.SetNames(names)
		rec.Watch(cfg.flight.Observe)
	}
	if cfg.SLO > 0 && cfg.markers != nil {
		breachRec, fl := rec, cfg.flight
		cfg.markers.dom.SetSLO(cfg.SLO, func(mk *trace.Marker, e2e time.Duration) {
			if breachRec != nil {
				breachRec.Emit(trace.Event{Actor: -1, Kind: trace.SLOBreach,
					At: time.Now().UnixNano(), Prev: int64(mk.ID), Arg: int64(e2e),
					Label: mk.Flow()})
			} else if fl != nil {
				fl.Trigger(fmt.Sprintf("e2e latency SLO breach: %v on flow %s (marker %d)",
					e2e.Round(time.Microsecond), mk.Flow(), mk.ID))
			}
		})
	}

	// 6. Monitor (and the rate estimator it drives, when requested).
	var mon *monitor.Monitor
	coreScalers := make([]core.Scaler, len(scalers))
	for i, s := range scalers {
		coreScalers[i] = s
		s.resolveWorkers(m.index)
	}
	var est *qmodel.Estimator
	if cfg.ServiceRateControl {
		est = buildEstimator(actors, linkInfos, rec)
	}
	var dw *monitor.DeadlockWatch
	if cfg.MonitorEnabled {
		mon = monitor.New(monitor.Config{
			Delta:         cfg.MonitorDelta,
			Resize:        cfg.DynamicResize,
			Shrink:        cfg.Shrink,
			AutoScale:     cfg.AutoScale,
			AdaptiveBatch: cfg.AdaptiveBatch,
			BatchMax:      cfg.BatchMax,
			Trace:         rec,
			Rates:         est,
			RateControl:   cfg.ServiceRateControl,
		}, linkInfos, coreScalers)
		if cfg.DeadlockGrace > 0 {
			dw = monitor.NewDeadlockWatch(actors, linkInfos, cfg.DeadlockGrace,
				func(diag string) {
					m.exc.mu.Lock()
					if m.exc.err == nil {
						m.exc.err = fmt.Errorf("raft: %s", diag)
					}
					m.exc.mu.Unlock()
					// Capture the post-mortem before the teardown below
					// disturbs the frozen state (the bus tap also fires on
					// the monitor's Deadlock event; the cooldown dedups).
					if cfg.flight != nil {
						cfg.flight.Trigger("deadlock detected: " + diag)
					}
					reg.closeAllQueues()
				})
			mon.SetDeadlockWatch(dw)
		}
		mon.Start()
	}

	// 6b. Ingestion gateway: bind each registered source to its engine link
	// so admission control sees live occupancy, rates and replica width.
	if cfg.Gateway != nil {
		if err := m.wireGateway(&cfg, linkInfos, scalers, est, rec); err != nil {
			if mon != nil {
				mon.Stop()
			}
			return nil, err
		}
	}

	// 7. Scheduler selection — before the metrics endpoint and the stats
	// streamer start, so both can poll the scheduler's counters mid-run.
	// Every scheduler is constructed through its New* constructor so it
	// implements Spawner and can adopt kernels spliced in by a rewrite.
	var sched scheduler.Scheduler = scheduler.NewGoroutine()
	var ws *scheduler.WorkSteal
	switch {
	case cfg.WorkStealing:
		ws = scheduler.NewWorkSteal(cfg.StealWorkers)
		ws.AttachLinks(linkInfos)
		ws.AttachTopology(cfg.Topology)
		if rec != nil {
			ws.AttachTrace(rec)
		}
		sched = ws
	case cfg.PoolWorkers > 0:
		sched = scheduler.NewPool(cfg.PoolWorkers)
	}
	schedStats, _ := sched.(scheduler.StatsReporter)

	// Runtime services up (metrics endpoint, stats streamer, gateway), then
	// launch and return the handle.
	health := &execHealth{}
	var msrv *metricsServer
	if cfg.MetricsAddr != "" || cfg.MetricsListener != nil {
		msrv, err = startMetrics(&cfg, linkInfos, actors, scalers, m, mon, rec, est, health, schedStats)
		if err != nil {
			if mon != nil {
				mon.Stop()
			}
			return nil, err
		}
	}
	var streamer *statsStreamer
	if cfg.Observer != nil {
		var dom *trace.MarkerDomain
		if cfg.markers != nil {
			dom = cfg.markers.dom
		}
		streamer = startStatsStreamer(cfg.ObserveEvery, cfg.Observer, linkInfos, actors, est, dom, schedStats)
	}
	if cfg.Gateway != nil {
		if err := cfg.Gateway.Start(); err != nil {
			if mon != nil {
				mon.Stop()
			}
			if streamer != nil {
				streamer.Stop()
			}
			if msrv != nil {
				msrv.Stop()
			}
			return nil, err
		}
	}

	ex := &Execution{
		m: m, cfg: &cfg, g: g, assign: assignment,
		rec: rec, stride: stride, mon: mon, dw: dw, est: est,
		sched: sched, ws: ws, scalers: scalers,
		health: health, msrv: msrv,
		reg:  reg,
		done: make(chan struct{}),
	}
	ex.spawn, _ = sched.(scheduler.Spawner)
	ex.rw = &Rewriter{ex: ex}
	ex.tmpl = newTemplateSet(ex)
	if cfg.Gateway != nil {
		// Unknown/unwired ingest sources get one shot at template-driven
		// instantiation before the gateway answers 404/503.
		cfg.Gateway.SetResolver(ex.tmpl.resolve)
	}
	reg.start = time.Now()
	ex.start = reg.start
	health.set(healthRunning)
	go func() {
		runErr := sched.Run(actors)
		ex.elapsed = time.Since(ex.start)
		health.set(healthDraining)
		if cfg.Gateway != nil {
			cfg.Gateway.Stop()
		}
		if mon != nil {
			mon.Stop()
		}
		if streamer != nil {
			streamer.Stop()
		}
		health.set(healthDone)
		if raised := m.raisedError(); raised != nil {
			runErr = errors.Join(raised, runErr)
		}
		ex.runErr = runErr
		close(ex.done)
	}()
	return ex, nil
}

// Validate runs Exe's structural checks — every port linked, types
// matching, graph acyclic with sources and sinks — without executing,
// so topology construction can be verified cheaply (e.g. in tests or
// before shipping a map to a remote node).
func (m *Map) Validate() error {
	g, err := m.buildGraph()
	if err != nil {
		return err
	}
	return g.Verify()
}

// buildGraph converts the map into the structural graph and checks that
// every declared port is bound ("the graph is first checked to ensure it
// is fully connected", §4.2).
func (m *Map) buildGraph() (*graph.Graph, error) {
	g := &graph.Graph{}
	ids := map[*KernelBase]int{}
	for _, k := range m.kernels {
		kb := k.kernelBase()
		ids[kb] = g.AddNode(kb.Name(), kb.Weight())
		for _, p := range append(kb.InPorts(), kb.OutPorts()...) {
			if !p.Bound() {
				return nil, fmt.Errorf("raft: port %s is not linked", p)
			}
		}
	}
	for _, l := range m.links {
		// Link-time checking already validated types; re-verify here as the
		// paper does at exe() ("type checking is performed across each link").
		if l.SrcPort.elem != l.DstPort.elem {
			return nil, fmt.Errorf("raft: type mismatch on %s -> %s", l.SrcPort, l.DstPort)
		}
		g.AddEdge(ids[l.Src.kernelBase()], ids[l.Dst.kernelBase()],
			l.SrcPort.name, l.DstPort.name, l.SrcPort.elem.String(), 1)
	}
	return g, nil
}

// allocate creates the stream queue for every link and binds both ports.
func (m *Map) allocate(cfg *Config) ([]*core.LinkInfo, error) {
	infos := make([]*core.LinkInfo, 0, len(m.links))
	for i, l := range m.links {
		capacity := l.capacity
		if capacity <= 0 {
			capacity = cfg.DefaultCapacity
		}
		maxCap := l.maxCap
		if maxCap <= 0 {
			maxCap = cfg.MaxCapacity
		}

		var q ringbuffer.Queue
		var typed any
		// Lock-free links are resizable too since the epoch swap: the
		// monitor publishes a new ring and the producer installs it at
		// its next push, so every allocation choice obeys the §4.1 rules.
		resizable := true
		if qp, ok := l.Src.(QueueProvider); ok {
			if pq, pt, provided := qp.ProvideQueue(l.SrcPort.name); provided {
				q, typed = pq, pt
				resizable = false // provider-owned storage (zero copy)
			}
		}
		if q == nil {
			q, typed = l.SrcPort.mk(capacity, maxCap, cfg.LockFree || l.lockFree)
		}
		if l.bestEffort {
			// Both ring kinds implement the setter; provider-owned queues
			// (read-only source rings) have nothing to drop and simply keep
			// their default policy.
			if be, ok := q.(interface{ SetBestEffort(bool) }); ok {
				be.SetBestEffort(true)
			}
		}
		async := &asyncCell{}
		l.SrcPort.bind(q, typed, async)
		l.DstPort.bind(q, typed, async)

		// One batch control per stream, shared by both endpoints and the
		// monitor. Low-latency links are pinned at 1 so the adaptive
		// batcher never holds their elements back.
		bc := &core.BatchControl{}
		if l.lowLatency {
			bc.Pin(1)
		}
		l.SrcPort.batch = bc
		l.DstPort.batch = bc

		name := fmt.Sprintf("%s.%s->%s.%s", l.Src.kernelBase().Name(), l.SrcPort.name, l.Dst.kernelBase().Name(), l.DstPort.name)

		// One marker lane per stream, shared by both endpoints (the same
		// pattern as the batch control): the producer's push deposits,
		// the consumer's pop collects. Ingest ports — out ports of kernels
		// with no inputs that have not opted out via SetMarkerForwarder —
		// additionally stamp fresh markers at the sampling stride.
		if cfg.markers != nil {
			lane := trace.NewMarkerLane(name)
			l.SrcPort.lane = lane
			l.DstPort.lane = lane
			src := l.Src.kernelBase()
			src.marks = cfg.markers
			l.Dst.kernelBase().marks = cfg.markers
			if len(src.inNames) == 0 && !src.markForward && l.SrcPort.stampEvery == 0 {
				l.SrcPort.stampEvery = cfg.markers.dom.Stride()
				l.SrcPort.stampLeft = l.SrcPort.stampEvery
				l.SrcPort.stampSource = src.Name()
			}
		}

		infos = append(infos, &core.LinkInfo{
			ID:              i,
			Name:            name,
			Queue:           q,
			SrcActor:        m.index[l.Src.kernelBase()],
			DstActor:        m.index[l.Dst.kernelBase()],
			ResizeEnabled:   resizable,
			MaxCap:          maxCap,
			Batch:           bc,
			LatencyPriority: l.lowLatency,
			BestEffort:      l.bestEffort,
		})
	}
	return infos, nil
}

// buildActors wraps every kernel into a core.Actor. When tracing is on,
// each actor carries the shared recorder: core.Actor.StepTimed emits
// RunStart/RunEnd itself from the same clock reads it uses for duty-cycle
// accounting, so tracing adds no extra time.Now calls. Kernels that run
// their own event loops (oar bridges) are handed the recorder through the
// TraceAttacher interface so their reconnect/replay transitions land on
// the same bus.
func (m *Map) buildActors(assignment mapper.Assignment, rec *trace.Recorder, stride int) []*core.Actor {
	actors := make([]*core.Actor, len(m.kernels))
	for i, k := range m.kernels {
		actors[i] = buildActor(k, i, assignment[i], rec, stride)
	}
	return actors
}

// buildActor wraps one kernel into an actor — shared by the initial build
// above and the rewriter, which spawns actors for kernels spliced into a
// running graph.
func buildActor(k Kernel, id, place int, rec *trace.Recorder, stride int) *core.Actor {
	kb := k.kernelBase()
	// Marker lifecycle events attribute to the kernel's trace track.
	kb.actor = int32(id)
	a := &core.Actor{
		ID:      id,
		Name:    kb.Name(),
		Place:   place,
		Weight:  kb.Weight(),
		Step:    k.Run,
		Virtual: kb.Virtual(),
		// Every actor carries a gate so a later rewrite can pause it at a
		// step boundary (one atomic load per step when idle).
		Gate: core.NewGate(),
	}
	if rec != nil {
		a.Trace = rec
		a.TraceID = int32(id)
		a.TraceStride = uint32(stride)
		if ta, ok := k.(TraceAttacher); ok {
			ta.AttachTrace(rec, int32(id))
		}
	}
	if init, ok := k.(Initializer); ok {
		a.Init = init.Init
	}
	a.Ready = readinessOf(kb)
	fin, hasFin := k.(Finalizer)
	a.Finish = func() {
		if hasFin {
			fin.Finalize()
		}
		// Close outputs (EOF downstream) and inputs (unblocks upstream
		// producers if this kernel died early).
		kb.closeAllQueues()
	}
	return a
}

// buildEstimator wires the online rate estimator over the engine state
// through closures, keeping qmodel free of engine imports: kernel taps
// read invocation counts off each actor's service timer, link taps read
// flow and occupancy off each queue's telemetry. Tap order matches the
// engine's link order — the alignment monitor.Config.Rates requires.
// rec may be nil (λ̂/occupancy only; µ̂ needs sampled spans).
func buildEstimator(actors []*core.Actor, links []*core.LinkInfo, rec *trace.Recorder) *qmodel.Estimator {
	var rd *trace.Reader
	if rec != nil {
		rd = rec.NewReader()
	}
	kts := make([]qmodel.KernelTap, len(actors))
	for i, a := range actors {
		kts[i] = qmodel.KernelTap{Name: a.Name, ID: int32(a.ID), Runs: a.Service.Count}
	}
	lts := make([]qmodel.LinkTap, len(links))
	for i, l := range links {
		tel := l.Queue.Telemetry()
		lts[i] = qmodel.LinkTap{
			Name:  l.Name,
			Src:   int32(l.SrcActor),
			Dst:   int32(l.DstActor),
			Flow:  tel.Flow,
			Block: tel.BlockNs,
			Occ:   tel.OccStats,
			Len:   l.Queue.Len,
			Cap:   l.Queue.Cap,
		}
	}
	return qmodel.NewEstimator(qmodel.EstimatorConfig{}, rd, kts, lts)
}

// readinessOf builds the cooperative-scheduler progress predicate for a
// kernel: every input stream must hold data (or be closed, so the pop
// returns immediately) and every output stream must have space (or be
// closed). Kernels that pop several elements per invocation can still
// block past the gate — the documented pool-scheduler caveat, backstopped
// by WithDeadlockDetection.
func readinessOf(kb *KernelBase) func() bool {
	ins := kb.InPorts()
	outs := kb.OutPorts()
	return func() bool {
		for _, p := range ins {
			q := p.Queue()
			if q == nil {
				continue
			}
			if q.Len() == 0 && !q.Closed() {
				return false
			}
		}
		for _, p := range outs {
			q := p.Queue()
			if q == nil {
				continue
			}
			if q.Len() >= q.Cap() && !q.Closed() {
				return false
			}
		}
		return true
	}
}

func (m *Map) buildReport(g *graph.Graph, cfg Config, assignment mapper.Assignment,
	actors []*core.Actor, links []*core.LinkInfo, mon *monitor.Monitor,
	scalers []*groupScaler, est *qmodel.Estimator, sched scheduler.Scheduler, elapsed time.Duration) *Report {

	rep := &Report{
		Elapsed:   elapsed,
		Scheduler: sched.Name(),
		CutCost:   mapper.CutCost(g, cfg.Topology, assignment),
	}
	if sr, ok := sched.(scheduler.StatsReporter); ok {
		ss := sr.SchedStats()
		rep.Sched = &SchedReport{
			Workers:         ss.Workers,
			Steals:          ss.Steals,
			StolenTasks:     ss.StolenTasks,
			Parks:           ss.Parks,
			Wakes:           ss.Wakes,
			Rescues:         ss.Rescues,
			StalledPasses:   ss.StalledPasses,
			CrossShardLinks: ss.CrossShardLinks,
		}
	}
	for _, a := range actors {
		kr := KernelReport{
			Name:         a.Name,
			Place:        a.Place,
			Runs:         a.Service.Count(),
			MeanSvcNanos: a.Service.MeanNanos(),
			SvcP50Nanos:  a.Service.Quantile(0.50),
			SvcP99Nanos:  a.Service.Quantile(0.99),
			BusyNanos:    a.Service.BusyNanos(),
			RatePerSec:   a.Service.RatePerSecond(),
			Restarts:     a.Restarts.Load(),
		}
		if est != nil {
			if r, ok := est.Kernel(int32(a.ID)); ok && r.Primed {
				kr.MuHat = r.MuElems
			}
		}
		rep.Kernels = append(rep.Kernels, kr)
	}
	if cfg.resLog != nil {
		rep.Recoveries = cfg.resLog.Events()
	}
	for _, k := range m.kernels {
		if br, ok := k.(BridgeReporter); ok {
			if b, carried := br.BridgeStats(); carried {
				rep.Bridges = append(rep.Bridges, b)
			}
		}
	}
	for i, l := range links {
		tel := l.Queue.Telemetry().Snapshot()
		lr := LinkReport{
			Name:          l.Name,
			Ring:          l.Queue.Kind(),
			FinalCap:      l.Queue.Cap(),
			MeanOccupancy: l.Occupancy.Mean(),
			FullFrac:      l.Occupancy.FullFraction(),
			StarvedFrac:   l.Occupancy.StarvedFraction(),
			Pushes:        tel.Pushes,
			Pops:          tel.Pops,
			WriteBlockNs:  tel.WriteBlockNs,
			ReadBlockNs:   tel.ReadBlockNs,
			Resizes:       tel.Resizes,
			Grows:         tel.Grows,
			Shrinks:       tel.Shrinks,
			SpinYields:    tel.SpinYields,
			SpinSleeps:    tel.SpinSleeps,
			Dropped:       tel.Dropped,
			OccHist:       tel.Occupancy,
			OccP50:        stats.LogQuantile(tel.Occupancy[:], 0.50),
			OccP99:        stats.LogQuantile(tel.Occupancy[:], 0.99),
			Batch:         l.Batch.Get(),
			Views:         tel.Views,
			ViewHoldNs:    tel.ViewHoldNs,
		}
		if est != nil {
			if r, ok := est.Link(i); ok && r.Primed {
				lr.LambdaHat, lr.MuHat, lr.RhoHat = r.Lambda, r.Mu, r.Rho
			}
		}
		rep.Links = append(rep.Links, lr)
	}
	if mon != nil {
		rep.MonitorTicks = mon.Ticks()
		rep.MonitorEvents = mon.Events()
	}
	for _, s := range scalers {
		rep.Groups = append(rep.Groups, GroupReport{
			Name:        s.Name(),
			MaxReplicas: s.Max(),
			ActiveAtEnd: s.Active(),
		})
	}
	if cfg.markers != nil {
		rep.Latency = &LatencyReport{
			Stride:  int(cfg.markers.dom.Stride()),
			Retired: cfg.markers.dom.Retired(),
			Flows:   cfg.markers.dom.Flows(),
			Stages:  cfg.markers.dom.Stages(),
		}
		if cfg.flight != nil {
			rep.Latency.FlightDir = cfg.flight.Dir()
			rep.Latency.FlightDumps = cfg.flight.Dumps()
		}
	}
	return rep
}

// rewriteReplicated rewrites every eligible kernel k
//
//	u --(out-of-order)--> k --> v
//
// into
//
//	u --> split --> {k, clone1, ..., cloneR-1} --> merge --> v
//
// preserving the original link capacities on the boundary streams
// (§4.1: "There are default split and reduce adapters that are inserted
// where needed").
func (m *Map) rewriteReplicated(cfg *Config) ([]*groupScaler, error) {
	var scalers []*groupScaler
	kernels := append([]Kernel(nil), m.kernels...)
	for _, k := range kernels {
		kb := k.kernelBase()
		inbound := m.linkInto(kb)
		outbound := m.linkOutOf(kb)
		if outbound == nil || !replicable(k, inbound) {
			continue
		}
		if inbound.reorderable {
			// Order-restoring mode: fixed-width deterministic adapters, no
			// monitor scaler (see raft/ordered.go).
			if err := m.rewriteOrdered(k, inbound, outbound, cfg.MaxReplicas); err != nil {
				return nil, err
			}
			continue
		}
		r := cfg.MaxReplicas
		initial := r
		if cfg.AutoScale {
			initial = 1
		}

		inPort := kb.inPorts[kb.inNames[0]]
		outPort := kb.outPorts[kb.outNames[0]]
		split := newSplitFromSpec(inPort, r, cfg.SplitPolicy, initial)
		split.SetName(fmt.Sprintf("split(%s)", kb.Name()))
		merge := newMergeFromSpec(outPort, r)
		merge.SetName(fmt.Sprintf("merge(%s)", kb.Name()))

		clones := make([]Kernel, r)
		clones[0] = k
		for i := 1; i < r; i++ {
			dup, err := duplicateKernel(k)
			if err != nil {
				return nil, err
			}
			dup.kernelBase().SetName(fmt.Sprintf("%s[%d]", kb.Name(), i))
			clones[i] = dup
		}

		// Detach the original links and reconnect through the adapters.
		m.removeLink(inbound)
		m.removeLink(outbound)
		if _, err := m.Link(inbound.Src, split,
			From(inbound.SrcPort.name), To("in"),
			Cap(inbound.capacity), MaxCap(inbound.maxCap)); err != nil {
			return nil, err
		}
		for i, c := range clones {
			if _, err := m.Link(split, c,
				From(fmt.Sprintf("%d", i)), To(c.kernelBase().inNames[0]),
				Cap(inbound.capacity), MaxCap(inbound.maxCap)); err != nil {
				return nil, err
			}
			if _, err := m.Link(c, merge,
				From(c.kernelBase().outNames[0]), To(fmt.Sprintf("%d", i)),
				Cap(outbound.capacity), MaxCap(outbound.maxCap)); err != nil {
				return nil, err
			}
		}
		if _, err := m.Link(merge, outbound.Dst,
			From("out"), To(outbound.DstPort.name),
			Cap(outbound.capacity), MaxCap(outbound.maxCap)); err != nil {
			return nil, err
		}

		// Group structure is monitor-owned; the rewriter must not splice it.
		split.kernelBase().rigid = true
		merge.kernelBase().rigid = true
		for _, c := range clones {
			c.kernelBase().rigid = true
		}
		scalers = append(scalers, &groupScaler{
			name:    kb.Name(),
			split:   split,
			max:     r,
			workers: clones,
		})
	}
	return scalers, nil
}

// linkInto returns the single link whose destination is kb, or nil.
func (m *Map) linkInto(kb *KernelBase) *Link {
	var found *Link
	for _, l := range m.links {
		if l.Dst.kernelBase() == kb {
			if found != nil {
				return nil // multiple inputs: not the simple replication shape
			}
			found = l
		}
	}
	return found
}

// linkOutOf returns the single link whose source is kb, or nil.
func (m *Map) linkOutOf(kb *KernelBase) *Link {
	var found *Link
	for _, l := range m.links {
		if l.Src.kernelBase() == kb {
			if found != nil {
				return nil
			}
			found = l
		}
	}
	return found
}

// removeLink detaches a link from the map and unbinds its ports.
func (m *Map) removeLink(target *Link) {
	target.SrcPort.link = nil
	target.DstPort.link = nil
	for i, l := range m.links {
		if l == target {
			m.links = append(m.links[:i], m.links[i+1:]...)
			return
		}
	}
}

// attachLinks finds the group's inbound boundary stream in the engine link
// list (identified by its queue) so the monitor can observe the group's
// back-pressure.
func (s *groupScaler) attachLinks(infos []*core.LinkInfo) {
	inQ := s.split.In("in").Queue()
	for _, li := range infos {
		if li.Queue == inQ {
			s.inLink = li
			break
		}
	}
}
