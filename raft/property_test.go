package raft

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestPropertyRandomPipelinesConserveElements drives the whole engine with
// randomized topologies: a source of n elements flows through a random
// sequence of stages — plain 1:1 workers, replicated out-of-order groups,
// order-restoring groups, manual split/merge diamonds — and the sink must
// receive exactly the expected multiset whatever the structure was.
func TestPropertyRandomPipelinesConserveElements(t *testing.T) {
	f := func(nSeed uint16, stageSeeds []uint8) bool {
		n := int64(nSeed%3000) + 1
		if len(stageSeeds) > 4 {
			stageSeeds = stageSeeds[:4]
		}

		m := NewMap()
		var prev Kernel = newGen(n)
		prevPort := ""

		// doubled tracks the multiplicative effect of the stages on the
		// expected values (each worker doubles).
		doublings := 0
		for _, seed := range stageSeeds {
			switch seed % 4 {
			case 0: // plain worker
				w := newWork()
				if _, err := m.Link(prev, w, from(prevPort)...); err != nil {
					return false
				}
				prev, prevPort = w, ""
				doublings++
			case 1: // out-of-order replicated worker
				w := newWork()
				opts := append(from(prevPort), AsOutOfOrder())
				if _, err := m.Link(prev, w, opts...); err != nil {
					return false
				}
				prev, prevPort = w, ""
				doublings++
			case 2: // order-restoring replicated worker
				w := newWork()
				opts := append(from(prevPort), AsReorderable())
				if _, err := m.Link(prev, w, opts...); err != nil {
					return false
				}
				prev, prevPort = w, ""
				doublings++
			case 3: // manual split/merge diamond with pass-through workers
				width := int(seed%3) + 2
				split := NewSplit[int64](width, SplitPolicy(seed%2))
				merge := NewMerge[int64](width)
				if _, err := m.Link(prev, split, append(from(prevPort), To("in"))...); err != nil {
					return false
				}
				for i := 0; i < width; i++ {
					w := newWork()
					if _, err := m.Link(split, w, From(itoa(i))); err != nil {
						return false
					}
					if _, err := m.Link(w, merge, To(itoa(i))); err != nil {
						return false
					}
				}
				prev, prevPort = merge, "out"
				doublings++
			}
		}

		sink := newCollect()
		if _, err := m.Link(prev, sink, from(prevPort)...); err != nil {
			return false
		}
		if _, err := m.Exe(WithAutoReplicate(3)); err != nil {
			return false
		}

		got := sink.values()
		if int64(len(got)) != n {
			t.Logf("n=%d stages=%v: received %d", n, stageSeeds, len(got))
			return false
		}
		factor := int64(1) << uint(doublings)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for i, v := range got {
			if v != int64(i)*factor {
				t.Logf("n=%d stages=%v: got[%d]=%d want %d", n, stageSeeds, i, v, int64(i)*factor)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// from builds the From option list for an optionally-named source port.
func from(port string) []LinkOption {
	if port == "" {
		return nil
	}
	return []LinkOption{From(port)}
}

// itoa for small non-negative ints (test-local helper).
func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}
