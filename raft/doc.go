// Package raft is a Go reproduction of RaftLib, the C++ template library
// for high-performance stream parallel processing (Beard, Li &
// Chamberlain, PMAM '15).
//
// A streaming application is a set of sequentially-written compute kernels
// connected by FIFO streams. Kernels embed [KernelBase], declare named,
// typed ports in their constructor, and implement Run, which the runtime
// invokes repeatedly:
//
//	type sum struct{ raft.KernelBase }
//
//	func newSum() *sum {
//		k := &sum{}
//		raft.AddInput[int64](k, "input_a")
//		raft.AddInput[int64](k, "input_b")
//		raft.AddOutput[int64](k, "sum")
//		return k
//	}
//
//	func (s *sum) Run() raft.Status {
//		a, err := raft.Pop[int64](s.In("input_a"))
//		if err != nil {
//			return raft.Stop
//		}
//		b, err := raft.Pop[int64](s.In("input_b"))
//		if err != nil {
//			return raft.Stop
//		}
//		if err := raft.Push(s.Out("sum"), a+b); err != nil {
//			return raft.Stop
//		}
//		return raft.Proceed
//	}
//
// Kernels are assembled into a topology with [Map.Link] and executed with
// [Map.Exe], which verifies the graph, sizes and allocates every stream,
// maps kernels to compute places, schedules them, and starts the runtime
// monitor that dynamically resizes queues and widens replicated kernel
// groups while the application runs. See the examples directory for
// complete programs.
package raft
