package raft

import (
	"sync/atomic"
	"time"

	"raftlib/internal/core"
	"raftlib/internal/fault"
	"raftlib/internal/resilience"
)

// This file is the public face of the resilience subsystem: kernel
// supervision (panic recovery with a restart policy), checkpoint/restart
// for stateful kernels, and deterministic fault injection. The paper's
// runtime "owns" buffer sizing, mapping and scheduling (§4.1); these
// options extend that ownership to partial failure, keeping the kernel
// programming model unchanged — a kernel that panics is restarted in place
// with its streams intact, and only an exhausted restart budget surfaces
// as an error (via the §4.2 asynchronous global exception pathway).

// Checkpointable is implemented by kernels whose state should survive
// restarts. The supervisor snapshots after successful invocations and
// restores before re-running a kernel it just restarted; with a
// file-backed store (WithCheckpoints) state also survives process exit,
// enabling cross-execution resume.
type Checkpointable interface {
	// Snapshot serializes the kernel's mutable state.
	Snapshot() ([]byte, error)
	// Restore re-establishes state from a prior Snapshot.
	Restore(snapshot []byte) error
}

// SupervisionPolicy is the per-kernel restart policy: restart budget and
// exponential backoff parameters. The zero value selects the defaults
// (3 restarts, 1ms initial backoff doubling to 1s, 10% jitter).
type SupervisionPolicy = resilience.Policy

// CheckpointStore persists kernel snapshots keyed by kernel name.
type CheckpointStore = resilience.Store

// NewMemCheckpointStore returns an in-memory CheckpointStore: snapshots
// survive kernel restarts within one execution but not process exit.
func NewMemCheckpointStore() CheckpointStore { return resilience.NewMemStore() }

// NewFileCheckpointStore returns a CheckpointStore persisting one file per
// kernel under dir (created if needed), for cross-execution resume.
func NewFileCheckpointStore(dir string) (CheckpointStore, error) {
	return resilience.NewFileStore(dir)
}

// RecoveryEvent records one supervised restart (or the terminal failure of
// an exhausted kernel); see Report.Recoveries.
type RecoveryEvent = resilience.Event

// FaultInjector is a deterministic fault plan: kernel kills at exact
// invocation indices, bridge severs/corruptions/delays at exact frame
// sequences. Arm one with NewFaultInjector and install it with
// WithFaultInjection; it drives the chaos tests and the A10 ablation.
type FaultInjector = fault.Injector

// NewFaultInjector returns an empty fault plan.
func NewFaultInjector() *FaultInjector { return fault.New() }

// BridgeReport summarizes one self-healing remote stream's recovery
// activity (oar bridges publish these; see Report.Bridges).
type BridgeReport struct {
	// Stream is the bridge's stream name.
	Stream string
	// Reconnects counts connections re-established after a failure.
	Reconnects uint64
	// Replayed counts frames retransmitted from the replay buffer.
	Replayed uint64
	// Dropped counts elements discarded under the Drop degradation policy.
	Dropped uint64
	// Downtime is the cumulative time spent disconnected.
	Downtime time.Duration
}

// BridgeReporter is implemented by bridge kernels that publish recovery
// counters; Exe collects them into Report.Bridges.
type BridgeReporter interface {
	// BridgeStats returns the bridge's recovery counters; ok is false when
	// the kernel never carried a bridge connection.
	BridgeStats() (rep BridgeReport, ok bool)
}

// WithSupervision wraps every kernel in a supervisor: a panic inside Run
// no longer aborts the application — the kernel restarts in place (its
// streams stay bound, so neighbors simply observe a pause) under the given
// restart policy. A kernel that exhausts its budget is escalated through
// the global exception pathway and Exe returns an error wrapping
// ErrRetriesExhausted. Pass the zero SupervisionPolicy for defaults.
func WithSupervision(p SupervisionPolicy) Option {
	return func(c *Config) {
		c.Supervised = true
		c.Supervision = p
	}
}

// WithCheckpoints enables supervision with file-backed checkpoints under
// dir: Checkpointable kernels snapshot after successful invocations,
// restore on restart, and resume from the latest snapshot when a new
// execution starts over the same directory.
func WithCheckpoints(dir string) Option {
	return func(c *Config) {
		c.Supervised = true
		c.CkptDir = dir
	}
}

// WithCheckpointStore is WithCheckpoints with a caller-supplied store
// (e.g. NewMemCheckpointStore for in-process restart protection without
// touching disk).
func WithCheckpointStore(s CheckpointStore) Option {
	return func(c *Config) {
		c.Supervised = true
		c.CkptStore = s
	}
}

// WithCheckpointEvery sets the snapshot period in successful invocations
// (default 1). Larger periods cost less but may re-process up to n-1
// inputs' worth of state mutation after a restart.
func WithCheckpointEvery(n uint64) Option {
	return func(c *Config) { c.CkptEvery = n }
}

// WithFaultInjection installs an armed fault plan. Injected kernel kills
// panic at the top of the chosen invocation (before any input is popped),
// so a supervised run recovers them losslessly; bridge faults fire at
// exact frame sequence numbers inside the oar transport.
func WithFaultInjection(inj *FaultInjector) Option {
	return func(c *Config) { c.Fault = inj }
}

// wireResilience wraps the actors with fault-injection and supervision
// layers. Ordering matters: the fault hook goes innermost (an injected
// kill must look exactly like a kernel panic) and supervision outermost
// (so it catches both real and injected failures).
func (m *Map) wireResilience(cfg *Config, actors []*core.Actor) error {
	store := cfg.CkptStore
	if store == nil && cfg.CkptDir != "" {
		fs, err := resilience.NewFileStore(cfg.CkptDir)
		if err != nil {
			return err
		}
		store = fs
	}
	if cfg.Supervised && store == nil {
		// Default store so Checkpointable kernels are restart-protected even
		// without an explicit WithCheckpoints.
		store = resilience.NewMemStore()
	}
	cfg.resStore = store
	cfg.resLog = &resilience.Log{}

	for i, k := range m.kernels {
		wireActorResilience(cfg, k, actors[i])
	}
	return nil
}

// wireActorResilience applies the execution's fault-injection and
// supervision configuration to one actor. Shared by wireResilience above
// and the rewriter, so dynamically spawned kernels get the same restart
// protection and checkpoint/restore plumbing as static ones.
func wireActorResilience(cfg *Config, k Kernel, a *core.Actor) {
	if a.Virtual {
		return
	}
	if cfg.Fault != nil {
		inner := a.Step
		name := a.Name
		inj := cfg.Fault
		var runs atomic.Uint64
		a.Step = func() core.Status {
			inj.BeforeRun(name, runs.Add(1))
			return inner()
		}
	}
	if !cfg.Supervised {
		return
	}
	store := cfg.resStore
	kb := k.kernelBase()
	hooks := resilience.Hooks{
		CheckpointEvery: cfg.CkptEvery,
		OnExhausted:     kb.Raise,
		Log:             cfg.resLog,
	}
	if ck, ok := k.(Checkpointable); ok {
		name := a.Name
		hooks.Checkpoint = func() error {
			snap, err := ck.Snapshot()
			if err != nil {
				return err
			}
			return store.Save(name, snap)
		}
		hooks.Restore = func() error {
			snap, found, err := store.Load(name)
			if err != nil || !found {
				return err
			}
			return ck.Restore(snap)
		}
		// Cross-execution resume: a persistent store may already hold a
		// snapshot from an earlier run; restore it before the first Step.
		innerInit := a.Init
		a.Init = func() error {
			if innerInit != nil {
				if err := innerInit(); err != nil {
					return err
				}
			}
			snap, found, err := store.Load(name)
			if err != nil {
				return err
			}
			if found {
				return ck.Restore(snap)
			}
			return nil
		}
	}
	resilience.Supervise(a, cfg.Supervision, hooks)
}
