package raft

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"raftlib/internal/core"
	"raftlib/internal/graph"
	"raftlib/internal/ringbuffer"
	"raftlib/internal/trace"
)

// This file implements runtime graph rewriting: hot add/remove of kernels
// and links in a running execution, under a graph-epoch protocol.
//
// A rewrite transaction commits in three passes:
//
//  1. Build (reversible). New streams are allocated and new kernels are
//     bound, spawned and registered with the monitor, the scheduler and
//     the deadlock watch. New kernels block harmlessly on their empty
//     inputs; nothing existing is touched. Continuing consumers whose
//     input stream is being replaced get a staged replacement binding
//     (Port.pending) — armed, but inert until the old stream closes.
//  2. Seal and splice. Every continuing producer whose output moves is
//     paused at a step boundary (core.Gate, downstream-first so blocked
//     kernels drain), its output ports are rebound to the new streams,
//     and the epoch is sealed: the abandoned streams are closed. All
//     gates release together; from this step the new structure carries
//     the traffic. Consumers migrate on their own goroutines once their
//     sealed stream drains — FIFO order, signals and latency markers are
//     preserved, and the untouched rest of the graph never stops.
//  3. Retire. Removed source kernels are gated out; the closure cascade
//     stops the other removed kernels at natural EOF. Once they finish,
//     their streams leave the monitor and the freeze scan, and the
//     registry stamps departure times for the report.
//
// Only sealed links ever pause, and only their producers, only for the
// rebind — there is no global stop-the-world.

// sealTimeout bounds how long a commit waits for one producer to reach a
// step boundary; a kernel parked on an untouched empty input cannot be
// paused and fails the transaction cleanly (documented limitation: splice
// around idle kernels requires traffic or their removal).
const sealTimeout = 2 * time.Second

// drainTimeout bounds how long a commit waits for removed kernels to
// drain and stop, and for migrated consumers to adopt their replacement
// streams.
const drainTimeout = 10 * time.Second

// registry is the live kernel/link book of one execution. The static
// slices built by ExeAsync stop being the whole story once a rewrite
// commits, so the abort pathway, the report build and rewrite validation
// all read this instead.
type registry struct {
	mu    sync.Mutex
	start time.Time
	// actors is append-only, indexed by actor ID (= trace id); links is
	// append-only in link-ID order. Departed entries stay (their telemetry
	// is still the run's history) with left stamps.
	actors []*actorEntry
	links  []*linkEntry
	epoch  int64
}

type actorEntry struct {
	k        Kernel
	a        *core.Actor
	joinedNs int64
	leftNs   int64
	left     bool
}

type linkEntry struct {
	l        *Link
	li       *core.LinkInfo
	joinedNs int64
	leftNs   int64
	removed  bool
}

func newRegistry(m *Map, actors []*core.Actor, links []*core.LinkInfo, scalers []*groupScaler) *registry {
	r := &registry{}
	for i, a := range actors {
		r.actors = append(r.actors, &actorEntry{k: m.kernels[i], a: a})
	}
	for i, li := range links {
		r.links = append(r.links, &linkEntry{l: m.links[i], li: li})
	}
	return r
}

func (r *registry) sinceStart() int64 {
	return int64(time.Since(r.start))
}

// closeAllQueues force-closes every stream, static and spliced — the
// global abort pathway behind KernelBase.Raise and the deadlock watch.
func (r *registry) closeAllQueues() {
	r.mu.Lock()
	links := append([]*linkEntry(nil), r.links...)
	r.mu.Unlock()
	for _, le := range links {
		le.li.Queue.Close()
	}
}

func (r *registry) actorList() []*core.Actor {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*core.Actor, len(r.actors))
	for i, ae := range r.actors {
		out[i] = ae.a
	}
	return out
}

func (r *registry) linkInfoList() []*core.LinkInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*core.LinkInfo, len(r.links))
	for i, le := range r.links {
		out[i] = le.li
	}
	return out
}

// stampReport writes the lifecycle columns onto a report whose Kernels
// and Links rows were built from actorList/linkInfoList (same order).
func (r *registry) stampReport(rep *Report) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range rep.Kernels {
		if i < len(r.actors) {
			rep.Kernels[i].JoinedAt = time.Duration(r.actors[i].joinedNs)
			rep.Kernels[i].LeftAt = time.Duration(r.actors[i].leftNs)
		}
	}
	for i := range rep.Links {
		if i < len(r.links) {
			rep.Links[i].JoinedAt = time.Duration(r.links[i].joinedNs)
			rep.Links[i].LeftAt = time.Duration(r.links[i].leftNs)
		}
	}
}

// liveKernel returns the live actor entry for k, or nil.
func (r *registry) liveKernel(kb *KernelBase) *actorEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ae := range r.actors {
		if ae.k.kernelBase() == kb && !ae.left {
			return ae
		}
	}
	return nil
}

// liveLink returns the live link entry for l, or nil.
func (r *registry) liveLink(l *Link) *linkEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, le := range r.links {
		if le.l == l && !le.removed {
			return le
		}
	}
	return nil
}

// Rewriter is the live graph-rewrite handle of one execution. Obtain it
// with Execution.Rewriter, open a transaction with Begin, stage changes,
// and Commit — the runtime splices them in under a graph epoch while the
// untouched parts of the application keep streaming. One transaction
// commits at a time.
type Rewriter struct {
	ex *Execution
	mu sync.Mutex
}

// Epoch returns the number of committed rewrite epochs so far.
func (r *Rewriter) Epoch() int64 {
	r.ex.reg.mu.Lock()
	defer r.ex.reg.mu.Unlock()
	return r.ex.reg.epoch
}

// Tx is one staged rewrite transaction: a set of links and kernels to add
// and remove, applied atomically by Commit. Stage removals before the
// additions that reuse their ports.
type Tx struct {
	rw   *Rewriter
	done bool

	addKernels []Kernel
	addLinks   []*Link
	rmKernels  []Kernel
	rmLinks    []*Link
	claimed    map[*Port]*Link
}

// Begin opens a rewrite transaction.
func (r *Rewriter) Begin() *Tx {
	return &Tx{rw: r, claimed: map[*Port]*Link{}}
}

// effectiveLink is the link a port will be bound to once in-flight
// migrations settle: the staged replacement when one is armed, else the
// current binding.
func effectiveLink(p *Port) *Link {
	if nb := p.pending.Load(); nb != nil {
		return nb.link
	}
	return p.link
}

// RemoveLink stages the removal of a live link. The stream is sealed at
// commit: its producer is rebound (or retired) first, in-flight elements
// drain to the consumer, then it closes.
func (t *Tx) RemoveLink(l *Link) error {
	if t.done {
		return errRewriteDone
	}
	if l == nil {
		return errors.New("raft: RemoveLink(nil)")
	}
	for _, x := range t.rmLinks {
		if x == l {
			return nil
		}
	}
	t.rmLinks = append(t.rmLinks, l)
	return nil
}

// RemoveKernel stages the removal of a live kernel. Every link touching
// it must be removed in the same transaction.
func (t *Tx) RemoveKernel(k Kernel) error {
	if t.done {
		return errRewriteDone
	}
	if k == nil {
		return errors.New("raft: RemoveKernel(nil)")
	}
	for _, x := range t.rmKernels {
		if x == k {
			return nil
		}
	}
	t.rmKernels = append(t.rmKernels, k)
	return nil
}

// Link stages a new stream between two kernels — existing ones (whose
// affected ports must be freed by removals staged earlier in this
// transaction) or new ones, which join the graph at commit. Options
// mirror Map.Link; AllowConvert is not supported on rewrites.
func (t *Tx) Link(src, dst Kernel, opts ...LinkOption) (*Link, error) {
	if t.done {
		return nil, errRewriteDone
	}
	var spec linkSpec
	for _, o := range opts {
		o(&spec)
	}
	if spec.convert {
		return nil, errors.New("raft: AllowConvert is not supported on rewrite links")
	}
	if src == nil || dst == nil {
		return nil, fmt.Errorf("raft: Link requires non-nil kernels")
	}
	if err := t.adopt(src); err != nil {
		return nil, err
	}
	if err := t.adopt(dst); err != nil {
		return nil, err
	}
	sp, err := t.pickPort(src.kernelBase(), Out, spec.from)
	if err != nil {
		return nil, err
	}
	dp, err := t.pickPort(dst.kernelBase(), In, spec.to)
	if err != nil {
		return nil, err
	}
	if sp.elem != dp.elem {
		return nil, fmt.Errorf("raft: %w linking %s -> %s", ErrTypeMismatch, sp, dp)
	}
	l := &Link{
		Src: src, Dst: dst, SrcPort: sp, DstPort: dp,
		capacity: spec.capacity, maxCap: spec.maxCap,
		outOfOrder: spec.outOfOrder, reorderable: spec.reorderable,
		lowLatency: spec.lowLatency, lockFree: spec.lockFree,
		bestEffort: spec.bestEffort,
	}
	t.claimed[sp] = l
	t.claimed[dp] = l
	t.addLinks = append(t.addLinks, l)
	return l, nil
}

var errRewriteDone = errors.New("raft: rewrite transaction already committed")

// adopt tracks a kernel the transaction introduces (no-op for live ones).
func (t *Tx) adopt(k Kernel) error {
	kb := k.kernelBase()
	if kb.rigid {
		return fmt.Errorf("raft: kernel %q belongs to a replicated group and cannot be rewired", kb.Name())
	}
	if t.rw.ex.reg.liveKernel(kb) != nil {
		return nil
	}
	if kb.m != nil && kb.m != t.rw.ex.m {
		return fmt.Errorf("raft: kernel %q already belongs to another map", kernelName(k))
	}
	for _, x := range t.addKernels {
		if x.kernelBase() == kb {
			return nil
		}
	}
	t.addKernels = append(t.addKernels, k)
	return nil
}

// pickPort resolves a port for a staged link: free means unbound, freed
// by a removal staged in this transaction, and not yet claimed by another
// staged link.
func (t *Tx) pickPort(kb *KernelBase, dir Direction, name string) (*Port, error) {
	names, ports := kb.outNames, kb.outPorts
	if dir == In {
		names, ports = kb.inNames, kb.inPorts
	}
	free := func(p *Port) bool {
		if _, taken := t.claimed[p]; taken {
			return false
		}
		el := effectiveLink(p)
		if el == nil {
			return true
		}
		for _, rm := range t.rmLinks {
			if rm == el {
				return true
			}
		}
		return false
	}
	if name != "" {
		p, ok := ports[name]
		if !ok {
			return nil, fmt.Errorf("raft: kernel %q has no %s port %q: %w", kb.name, dir, name, ErrPortNotFound)
		}
		if !free(p) {
			return nil, fmt.Errorf("raft: port %s is already linked (remove its link in this transaction first): %w", p, ErrPortInUse)
		}
		return p, nil
	}
	var candidates []*Port
	for _, n := range names {
		if free(ports[n]) {
			candidates = append(candidates, ports[n])
		}
	}
	switch len(candidates) {
	case 1:
		return candidates[0], nil
	case 0:
		return nil, fmt.Errorf("raft: kernel %q has no free %s port: %w", kb.name, dir, ErrPortNotFound)
	default:
		return nil, fmt.Errorf("raft: kernel %q has %d free %s ports; select one with %s",
			kb.name, len(candidates), dir, fromOrTo(dir))
	}
}

// stagedLink is one allocated-but-not-yet-live stream.
type stagedLink struct {
	l     *Link
	li    *core.LinkInfo
	q     ringbuffer.Queue
	typed any
	async *asyncCell
	bc    *core.BatchControl
	lane  *trace.MarkerLane
	// srcDefer/dstDefer mark endpoints owned by continuing kernels, which
	// are rebound at the seal (producer, under gate) or by the kernel
	// itself (consumer, via Port.pending) instead of immediately.
	srcDefer bool
	dstDefer bool
	pending  *pendingRebind
}

// built is the reversible state of pass 1.
type built struct {
	staged    []*stagedLink
	newActors []*actorEntry
	newLinks  []*linkEntry
}

// Commit applies the transaction to the running graph. On success the
// new structure carries the traffic and the removed kernels have drained
// and stopped; on error the graph is unchanged (additions are unwound).
func (t *Tx) Commit() error {
	r := t.rw
	r.mu.Lock()
	defer r.mu.Unlock()
	if t.done {
		return errRewriteDone
	}
	t.done = true
	ex := r.ex
	select {
	case <-ex.done:
		return errors.New("raft: execution already completed")
	default:
	}
	if len(t.addLinks) == 0 && len(t.rmLinks) == 0 && len(t.rmKernels) == 0 {
		return nil
	}
	if err := t.validate(); err != nil {
		return err
	}

	ex.reg.mu.Lock()
	ex.reg.epoch++
	epoch := ex.reg.epoch
	ex.reg.mu.Unlock()

	b, err := ex.buildAdditions(t, epoch)
	if err != nil {
		ex.rollbackAdditions(t, b, epoch)
		return err
	}
	if err := ex.sealAndSplice(t, b, epoch); err != nil {
		ex.rollbackAdditions(t, b, epoch)
		return err
	}
	return ex.retireRemoved(t, epoch)
}

// validate checks the transaction against the live graph and verifies the
// prospective graph structurally before anything is touched.
func (t *Tx) validate() error {
	ex := t.rw.ex
	reg := ex.reg

	rmLink := map[*Link]bool{}
	for _, l := range t.rmLinks {
		le := reg.liveLink(l)
		if le == nil {
			return fmt.Errorf("raft: RemoveLink: %s.%s -> %s.%s is not a live link of this execution",
				l.Src.kernelBase().Name(), l.SrcPort.name, l.Dst.kernelBase().Name(), l.DstPort.name)
		}
		if l.Src.kernelBase().rigid || l.Dst.kernelBase().rigid {
			return fmt.Errorf("raft: RemoveLink: %s touches a replicated group", le.li.Name)
		}
		rmLink[l] = true
	}
	rmKernel := map[*KernelBase]bool{}
	for _, k := range t.rmKernels {
		kb := k.kernelBase()
		if kb.rigid {
			return fmt.Errorf("raft: RemoveKernel: %q belongs to a replicated group", kb.Name())
		}
		if reg.liveKernel(kb) == nil {
			return fmt.Errorf("raft: RemoveKernel: %q is not a live kernel of this execution", kb.Name())
		}
		rmKernel[kb] = true
	}

	// Name uniqueness: the supervisor's checkpoint store and the report
	// are keyed by kernel name.
	reg.mu.Lock()
	names := map[string]bool{}
	for _, ae := range reg.actors {
		if !ae.left {
			names[ae.a.Name] = true
		}
	}
	liveKernels := make([]*actorEntry, 0, len(reg.actors))
	for _, ae := range reg.actors {
		if !ae.left {
			liveKernels = append(liveKernels, ae)
		}
	}
	liveLinks := make([]*linkEntry, 0, len(reg.links))
	for _, le := range reg.links {
		if !le.removed {
			liveLinks = append(liveLinks, le)
		}
	}
	reg.mu.Unlock()
	for _, k := range t.addKernels {
		name := k.kernelBase().name
		if name != "" && names[name] {
			return fmt.Errorf("raft: added kernel name %q is already in use", name)
		}
	}

	// Every live link touching a removed kernel must be removed with it.
	for _, le := range liveLinks {
		if rmLink[le.l] {
			continue
		}
		if rmKernel[le.l.Src.kernelBase()] || rmKernel[le.l.Dst.kernelBase()] {
			return fmt.Errorf("raft: removed kernel still has live link %s (remove it in the same transaction)", le.li.Name)
		}
	}

	// Prospective graph: live structure minus removals plus additions, with
	// every port of every surviving kernel bound — the same invariant
	// Map.Exe enforces, checked transactionally here.
	g := &graph.Graph{}
	ids := map[*KernelBase]int{}
	check := func(kb *KernelBase) error {
		for _, p := range append(kb.InPorts(), kb.OutPorts()...) {
			el := effectiveLink(p)
			bound := el != nil && !rmLink[el]
			if _, claimed := t.claimed[p]; claimed || bound {
				continue
			}
			return fmt.Errorf("raft: rewrite leaves port %s unlinked", p)
		}
		return nil
	}
	for _, ae := range liveKernels {
		kb := ae.k.kernelBase()
		if rmKernel[kb] {
			continue
		}
		if err := check(kb); err != nil {
			return err
		}
		ids[kb] = g.AddNode(kb.Name(), kb.Weight())
	}
	for _, k := range t.addKernels {
		kb := k.kernelBase()
		if err := check(kb); err != nil {
			return err
		}
		ids[kb] = g.AddNode(kb.Name(), kb.Weight())
	}
	edges := make([]*Link, 0, len(liveLinks)+len(t.addLinks))
	for _, le := range liveLinks {
		if !rmLink[le.l] {
			edges = append(edges, le.l)
		}
	}
	edges = append(edges, t.addLinks...)
	for _, l := range edges {
		src, ok1 := ids[l.Src.kernelBase()]
		dst, ok2 := ids[l.Dst.kernelBase()]
		if !ok1 || !ok2 {
			return fmt.Errorf("raft: staged link %s.%s -> %s.%s references a kernel outside the rewritten graph",
				l.Src.kernelBase().Name(), l.SrcPort.name, l.Dst.kernelBase().Name(), l.DstPort.name)
		}
		g.AddEdge(src, dst, l.SrcPort.name, l.DstPort.name, l.SrcPort.elem.String(), 1)
	}
	return g.Verify()
}

// buildAdditions is pass 1: allocate the staged streams, spawn the new
// kernels (they block on their empty inputs), and register everything
// with the monitor, the scheduler and the freeze scan.
func (ex *Execution) buildAdditions(t *Tx, epoch int64) (*built, error) {
	b := &built{}
	cfg := ex.cfg
	reg := ex.reg
	rmKernel := map[*KernelBase]bool{}
	for _, k := range t.rmKernels {
		rmKernel[k.kernelBase()] = true
	}
	added := map[*KernelBase]bool{}
	for _, k := range t.addKernels {
		added[k.kernelBase()] = true
	}

	// Adopt the new kernels (names first, so staged link labels and marker
	// stamps read properly).
	reg.mu.Lock()
	nextLinkID := len(reg.links)
	nextActorID := len(reg.actors)
	reg.mu.Unlock()
	for i, k := range t.addKernels {
		kb := k.kernelBase()
		kb.m = ex.m
		if kb.name == "" {
			kb.name = fmt.Sprintf("%s#%d", kernelName(k), nextActorID+i)
		}
	}

	// Allocate every staged stream (same policy as the initial allocate).
	for _, l := range t.addLinks {
		capacity := l.capacity
		if capacity <= 0 {
			capacity = cfg.DefaultCapacity
		}
		maxCap := l.maxCap
		if maxCap <= 0 {
			maxCap = cfg.MaxCapacity
		}
		var q ringbuffer.Queue
		var typed any
		resizable := true
		if qp, ok := l.Src.(QueueProvider); ok {
			if pq, pt, provided := qp.ProvideQueue(l.SrcPort.name); provided {
				q, typed = pq, pt
				resizable = false
			}
		}
		if q == nil {
			q, typed = l.SrcPort.mk(capacity, maxCap, cfg.LockFree || l.lockFree)
		}
		if l.bestEffort {
			if be, ok := q.(interface{ SetBestEffort(bool) }); ok {
				be.SetBestEffort(true)
			}
		}
		bc := &core.BatchControl{}
		if l.lowLatency {
			bc.Pin(1)
		}
		name := fmt.Sprintf("%s.%s->%s.%s", l.Src.kernelBase().Name(), l.SrcPort.name,
			l.Dst.kernelBase().Name(), l.DstPort.name)
		var lane *trace.MarkerLane
		if cfg.markers != nil {
			lane = trace.NewMarkerLane(name)
			// Marker plumbing is only written on kernels added by this
			// transaction: continuing endpoints already carry it from their
			// original allocation, and they are live — writing here would
			// race their stamping hot path.
			src := l.Src.kernelBase()
			if added[src] {
				src.marks = cfg.markers
				if len(src.inNames) == 0 && !src.markForward && l.SrcPort.stampEvery == 0 {
					l.SrcPort.stampEvery = cfg.markers.dom.Stride()
					l.SrcPort.stampLeft = l.SrcPort.stampEvery
					l.SrcPort.stampSource = src.Name()
				}
			}
			if dst := l.Dst.kernelBase(); added[dst] {
				dst.marks = cfg.markers
			}
		}
		s := &stagedLink{
			l: l, q: q, typed: typed, async: &asyncCell{}, bc: bc, lane: lane,
			srcDefer: !added[l.Src.kernelBase()],
			dstDefer: !added[l.Dst.kernelBase()],
		}
		s.li = &core.LinkInfo{
			ID:              nextLinkID,
			Name:            name,
			Queue:           q,
			ResizeEnabled:   resizable,
			MaxCap:          maxCap,
			Batch:           bc,
			LatencyPriority: l.lowLatency,
			BestEffort:      l.bestEffort,
		}
		nextLinkID++
		b.staged = append(b.staged, s)
	}

	// Bind new-kernel endpoints now; stage continuing ones.
	for _, s := range b.staged {
		if !s.srcDefer {
			p := s.l.SrcPort
			p.bind(s.q, s.typed, s.async)
			p.link, p.batch, p.lane = s.l, s.bc, s.lane
		}
		if !s.dstDefer {
			p := s.l.DstPort
			p.bind(s.q, s.typed, s.async)
			p.link, p.batch, p.lane = s.l, s.bc, s.lane
		} else {
			s.pending = &pendingRebind{
				q: s.q, typed: s.typed, async: s.async,
				link: s.l, batch: s.bc, lane: s.lane,
				applied: make(chan struct{}),
			}
		}
	}

	// Actors for the new kernels: IDs continue the registry sequence, and
	// join stamps mark the epoch boundary in the report.
	now := reg.sinceStart()
	reg.mu.Lock()
	for _, k := range t.addKernels {
		id := len(reg.actors)
		a := buildActor(k, id, 0, ex.rec, ex.stride)
		wireActorResilience(cfg, k, a)
		ae := &actorEntry{k: k, a: a, joinedNs: now}
		reg.actors = append(reg.actors, ae)
		b.newActors = append(b.newActors, ae)
	}
	for _, s := range b.staged {
		s.li.SrcActor = int(s.l.Src.kernelBase().actor)
		s.li.DstActor = int(s.l.Dst.kernelBase().actor)
		le := &linkEntry{l: s.l, li: s.li, joinedNs: now}
		reg.links = append(reg.links, le)
		b.newLinks = append(b.newLinks, le)
	}
	reg.mu.Unlock()

	// Runtime services adopt the additions.
	for _, s := range b.staged {
		if ex.mon != nil {
			ex.mon.AddLink(s.li)
		}
		if ex.dw != nil {
			ex.dw.AddLink(s.li)
		}
		if ex.ws != nil {
			ex.ws.TakeLink(s.li)
		}
	}
	if ex.rec != nil {
		for _, ae := range b.newActors {
			ex.rec.Emit(trace.Event{Actor: int32(ae.a.ID), Kind: trace.GraphAdd,
				At: time.Now().UnixNano(), Arg: epoch, Label: ae.a.Name})
		}
		for _, le := range b.newLinks {
			ex.rec.Emit(trace.Event{Actor: -1, Kind: trace.GraphAdd,
				At: time.Now().UnixNano(), Arg: epoch, Label: le.li.Name})
		}
	}
	for _, ae := range b.newActors {
		if ex.dw != nil {
			ex.dw.AddActor(ae.a)
		}
		if ex.spawn == nil {
			return b, errors.New("raft: scheduler cannot adopt spawned kernels")
		}
		if err := ex.spawn.Spawn(ae.a); err != nil {
			return b, fmt.Errorf("raft: spawning %q: %w", ae.a.Name, err)
		}
	}

	// Arm consumer migrations last: everything the swap publishes is in
	// place before any ErrClosed wake-up can observe the staging.
	for _, s := range b.staged {
		if s.pending != nil {
			s.l.DstPort.installPending(s.pending)
		}
	}
	return b, nil
}

// rollbackAdditions unwinds pass 1 after a failed build or seal: staged
// consumer migrations are disarmed, the staged streams close (stopping
// any spawned kernels via the EOF cascade), and the registry records the
// aborted entries as immediately departed.
func (ex *Execution) rollbackAdditions(t *Tx, b *built, epoch int64) {
	if b == nil {
		return
	}
	for _, s := range b.staged {
		if s.pending != nil {
			s.l.DstPort.pending.Store(nil)
		}
	}
	for _, s := range b.staged {
		s.q.Close()
	}
	deadline := time.Now().Add(drainTimeout)
	for _, ae := range b.newActors {
		for !ae.a.Finished.Load() && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
		}
	}
	now := ex.reg.sinceStart()
	ex.reg.mu.Lock()
	for _, ae := range b.newActors {
		ae.left, ae.leftNs = true, now
	}
	for _, le := range b.newLinks {
		le.removed, le.leftNs = true, now
	}
	ex.reg.mu.Unlock()
	for _, le := range b.newLinks {
		if ex.mon != nil {
			ex.mon.RemoveLink(le.li)
		}
		if ex.dw != nil {
			ex.dw.RemoveLink(le.li)
		}
	}
	if ex.rec != nil {
		for _, ae := range b.newActors {
			ex.rec.Emit(trace.Event{Actor: int32(ae.a.ID), Kind: trace.GraphRemove,
				At: time.Now().UnixNano(), Arg: epoch, Label: ae.a.Name + " (rollback)"})
		}
		for _, le := range b.newLinks {
			ex.rec.Emit(trace.Event{Actor: -1, Kind: trace.GraphRemove,
				At: time.Now().UnixNano(), Arg: epoch, Label: le.li.Name + " (rollback)"})
		}
	}
}

// sealAndSplice is pass 2: pause every continuing producer whose output
// moves (downstream-first, so kernels blocked on full streams drain
// free), rebind their ports, seal the abandoned streams, and release.
func (ex *Execution) sealAndSplice(t *Tx, b *built, epoch int64) error {
	rmKernel := map[*KernelBase]bool{}
	for _, k := range t.rmKernels {
		rmKernel[k.kernelBase()] = true
	}

	// Producers to gate: continuing kernels with staged out-ports.
	rebinds := map[*KernelBase][]*stagedLink{}
	for _, s := range b.staged {
		if s.srcDefer {
			kb := s.l.Src.kernelBase()
			rebinds[kb] = append(rebinds[kb], s)
		}
	}
	// Streams to seal: removed links whose producer continues (a removed
	// producer's streams close via its own teardown instead).
	sealQ := map[*KernelBase][]*core.LinkInfo{}
	var sealed int64
	for _, l := range t.rmLinks {
		if le := ex.reg.liveLink(l); le != nil && !rmKernel[l.Src.kernelBase()] {
			sealQ[l.Src.kernelBase()] = append(sealQ[l.Src.kernelBase()], le.li)
			sealed++
		}
	}
	producers := make([]*KernelBase, 0, len(rebinds)+len(sealQ))
	seen := map[*KernelBase]bool{}
	for kb := range rebinds {
		if !seen[kb] {
			seen[kb] = true
			producers = append(producers, kb)
		}
	}
	for kb := range sealQ {
		if !seen[kb] {
			seen[kb] = true
			producers = append(producers, kb)
		}
	}

	if ex.rec != nil {
		ex.rec.Emit(trace.Event{Actor: -1, Kind: trace.EpochSeal,
			At: time.Now().UnixNano(), Arg: epoch, Prev: sealed,
			Label: fmt.Sprintf("+%dk +%dl -%dk -%dl",
				len(t.addKernels), len(t.addLinks), len(t.rmKernels), len(t.rmLinks))})
	}

	// Downstream-first: a producer blocked pushing into a full stream
	// drains (its consumer is not paused yet) and reaches its gate; a
	// consumer-side producer paused early cannot starve an upstream one.
	depth := ex.topoDepth()
	sort.SliceStable(producers, func(i, j int) bool { return depth[producers[i]] > depth[producers[j]] })

	var paused []*core.Actor
	resumeAll := func() {
		for _, a := range paused {
			a.Gate.Resume()
		}
	}
	for _, kb := range producers {
		ae := ex.reg.liveKernel(kb)
		if ae == nil {
			resumeAll()
			return fmt.Errorf("raft: producer %q is not live", kb.Name())
		}
		a := ae.a
		if !a.Gate.Pause(sealTimeout, a.Finished.Load) {
			resumeAll()
			return fmt.Errorf("raft: kernel %q did not reach a step boundary within %v (idle kernels cannot be spliced around; drive traffic or remove them)",
				kb.Name(), sealTimeout)
		}
		paused = append(paused, a)
	}

	// All affected producers are at step boundaries (or finished): splice.
	for _, kb := range producers {
		for _, s := range rebinds[kb] {
			p := s.l.SrcPort
			p.bind(s.q, s.typed, s.async)
			p.link, p.batch, p.lane = s.l, s.bc, s.lane
		}
		for _, li := range sealQ[kb] {
			li.Queue.Close()
		}
	}
	resumeAll()

	// Retire removed sources; every other removed kernel stops at natural
	// EOF once the closure cascade reaches it.
	for _, k := range t.rmKernels {
		kb := k.kernelBase()
		hasLiveInput := false
		for _, p := range kb.InPorts() {
			if p.link != nil {
				hasLiveInput = true
				break
			}
		}
		if !hasLiveInput {
			if ae := ex.reg.liveKernel(kb); ae != nil {
				ae.a.Gate.Retire()
			}
		}
	}

	// Wait for armed consumer migrations so Commit returning means the new
	// structure carries the traffic. Best-effort: a consumer parked on a
	// different input migrates at its next touch of this port.
	deadline := time.NewTimer(drainTimeout)
	defer deadline.Stop()
	for _, s := range b.staged {
		if s.pending == nil {
			continue
		}
		select {
		case <-s.pending.applied:
		case <-deadline.C:
			return nil
		case <-ex.done:
			return nil
		}
	}
	return nil
}

// topoDepth computes each live kernel's depth (longest path from a
// source) over the live graph, for the downstream-first pause order.
func (ex *Execution) topoDepth() map[*KernelBase]int {
	reg := ex.reg
	reg.mu.Lock()
	type edge struct{ src, dst *KernelBase }
	var edges []edge
	nodes := map[*KernelBase]bool{}
	for _, ae := range reg.actors {
		if !ae.left {
			nodes[ae.k.kernelBase()] = true
		}
	}
	for _, le := range reg.links {
		if !le.removed {
			edges = append(edges, edge{le.l.Src.kernelBase(), le.l.Dst.kernelBase()})
		}
	}
	reg.mu.Unlock()

	depth := map[*KernelBase]int{}
	// Relaxation to a fixed point; the graph is verified acyclic, and
	// rewrite-scale node counts keep this trivial.
	for changed, rounds := true, 0; changed && rounds <= len(nodes)+1; rounds++ {
		changed = false
		for _, e := range edges {
			if !nodes[e.src] || !nodes[e.dst] {
				continue
			}
			if d := depth[e.src] + 1; d > depth[e.dst] {
				depth[e.dst] = d
				changed = true
			}
		}
	}
	return depth
}

// retireRemoved is pass 3: wait out the EOF cascade, then detach the
// removed structure from the monitor and the freeze scan and stamp the
// registry.
func (ex *Execution) retireRemoved(t *Tx, epoch int64) error {
	reg := ex.reg
	var waitErr error
	deadline := time.Now().Add(drainTimeout)
	removedActors := make([]*actorEntry, 0, len(t.rmKernels))
	for _, k := range t.rmKernels {
		ae := reg.liveKernel(k.kernelBase())
		if ae == nil {
			continue
		}
		removedActors = append(removedActors, ae)
		for !ae.a.Finished.Load() {
			if !time.Now().Before(deadline) {
				waitErr = fmt.Errorf("raft: removed kernel %q did not stop within %v", ae.a.Name, drainTimeout)
				break
			}
			select {
			case <-ex.done:
			default:
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	now := reg.sinceStart()
	removedLinks := make([]*linkEntry, 0, len(t.rmLinks))
	reg.mu.Lock()
	for _, ae := range removedActors {
		ae.left, ae.leftNs = true, now
	}
	for _, l := range t.rmLinks {
		for _, le := range reg.links {
			if le.l == l && !le.removed {
				le.removed, le.leftNs = true, now
				removedLinks = append(removedLinks, le)
				break
			}
		}
	}
	reg.mu.Unlock()

	for _, le := range removedLinks {
		// The sealed stream is drained (or its kernel gone); make sure no
		// blocked endpoint outlives the epoch, then stop scanning it.
		le.li.Queue.Close()
		if ex.mon != nil {
			ex.mon.RemoveLink(le.li)
		}
		if ex.dw != nil {
			ex.dw.RemoveLink(le.li)
		}
	}
	if ex.rec != nil {
		for _, ae := range removedActors {
			ex.rec.Emit(trace.Event{Actor: int32(ae.a.ID), Kind: trace.GraphRemove,
				At: time.Now().UnixNano(), Arg: epoch, Label: ae.a.Name})
		}
		for _, le := range removedLinks {
			ex.rec.Emit(trace.Event{Actor: -1, Kind: trace.GraphRemove,
				At: time.Now().UnixNano(), Arg: epoch, Label: le.li.Name})
		}
	}
	return waitErr
}
