package raft

import (
	"strconv"
	"time"
)

// LambdaKernel is a compute kernel defined by a plain function instead of
// a named type, eliminating the declaration boiler-plate (§4.2, Fig. 7:
// "RaftLib brings lambda compute kernels, which give the user the ability
// to declare a fully functional, independent kernel while freeing him/her
// from the cruft"). Ports are named sequentially from "0", exactly as in
// the paper.
//
// State captured by the function is subject to the same caveat the paper
// gives: capturing external values by reference yields undefined behavior
// if the kernel is replicated. Replication of lambda kernels therefore
// requires an explicit maker via NewLambdaCloneable.
type LambdaKernel struct {
	KernelBase
	fn func(k *LambdaKernel) Status
	mk func() *LambdaKernel // non-nil for cloneable lambdas
}

// Run implements Kernel by invoking the wrapped function.
func (l *LambdaKernel) Run() Status { return l.fn(l) }

// NewLambda builds a kernel with nIn input and nOut output ports, all of
// element type T (the paper's single-template-parameter form: "If a single
// type is provided as a template parameter, then all ports for this lambda
// kernel are assumed to have this type"). Ports are named "0", "1", ....
// fn is called repeatedly by the runtime with the kernel itself, giving it
// access to In("0"), Out("0"), etc.
func NewLambda[T any](nIn, nOut int, fn func(k *LambdaKernel) Status) *LambdaKernel {
	l := &LambdaKernel{fn: fn}
	l.SetName("lambdak")
	for i := 0; i < nIn; i++ {
		AddInput[T](l, strconv.Itoa(i))
	}
	for i := 0; i < nOut; i++ {
		AddOutput[T](l, strconv.Itoa(i))
	}
	return l
}

// NewLambdaIO builds a lambda kernel whose nIn input ports carry I and
// whose nOut output ports carry O (the two-template-parameter form).
func NewLambdaIO[I, O any](nIn, nOut int, fn func(k *LambdaKernel) Status) *LambdaKernel {
	l := &LambdaKernel{fn: fn}
	l.SetName("lambdak")
	for i := 0; i < nIn; i++ {
		AddInput[I](l, strconv.Itoa(i))
	}
	for i := 0; i < nOut; i++ {
		AddOutput[O](l, strconv.Itoa(i))
	}
	return l
}

// cloneableLambda wraps a LambdaKernel with a maker so the runtime can
// replicate it safely.
type cloneableLambda struct {
	*LambdaKernel
}

// Clone implements Cloner by invoking the maker for a fresh kernel (fresh
// closure state, fresh ports).
func (c *cloneableLambda) Clone() Kernel {
	return &cloneableLambda{c.mk()}
}

// NewLambdaCloneable makes a lambda kernel eligible for automatic
// replication: make must build a fresh, state-independent LambdaKernel on
// every call (each replica gets its own closure state, avoiding the
// by-reference capture hazard the paper describes).
func NewLambdaCloneable(make func() *LambdaKernel) Kernel {
	l := make()
	l.mk = make
	return &cloneableLambda{l}
}

// nanotime returns a monotonic timestamp in nanoseconds for cheap interval
// measurement inside kernels.
func nanotime() int64 { return time.Now().UnixNano() }
