package raft

import (
	"errors"
	"testing"
)

// recoverErr runs fn and returns its panic value as an error (nil if no
// panic or a non-error panic value).
func recoverErr(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
			}
		}
	}()
	fn()
	return nil
}

func TestMisusePanicsWrapSentinels(t *testing.T) {
	k := newSum()
	cases := []struct {
		name     string
		sentinel error
		fn       func()
	}{
		{"unknown input", ErrPortNotFound, func() { k.In("nope") }},
		{"unknown output", ErrPortNotFound, func() { k.Out("nope") }},
		{"duplicate port", ErrPortInUse, func() { AddInput[int64](k, "input_a") }},
		{"unbound pop", ErrPortUnbound, func() { _, _ = Pop[int64](k.In("input_a")) }},
		{"unbound async", ErrPortUnbound, func() { k.Out("sum").SendAsync(SigUser) }},
	}
	for _, c := range cases {
		err := recoverErr(c.fn)
		if err == nil {
			t.Errorf("%s: panic value is not an error", c.name)
			continue
		}
		if !errors.Is(err, c.sentinel) {
			t.Errorf("%s: %v does not wrap %v", c.name, err, c.sentinel)
		}
	}
}

func TestLinkErrorsWrapSentinels(t *testing.T) {
	m := NewMap()
	gen := newGen(3)
	sink := newCollect()

	if _, err := m.Link(gen, sink, To("nope")); !errors.Is(err, ErrPortNotFound) {
		t.Errorf("unknown To port: %v", err)
	}
	if _, err := m.Link(gen, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(gen, sink); !errors.Is(err, ErrPortNotFound) {
		t.Errorf("no unbound port: %v", err)
	}

	m2 := NewMap()
	strs := NewLambda[string](0, 1, func(k *LambdaKernel) Status { return Stop })
	if _, err := m2.Link(strs, newCollect()); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("string->int64 link: %v", err)
	}
}

func TestExeSurfacesTypedPanicsAsErrors(t *testing.T) {
	m := NewMap()
	bad := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
		_, _ = Pop[string](k.In("0")) // wrong T: panics with ErrTypeMismatch
		return Stop
	})
	if _, err := m.Link(newGen(5), bad); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(bad, newCollect()); err != nil {
		t.Fatal(err)
	}
	_, err := m.Exe()
	if err == nil {
		t.Fatal("Exe succeeded despite kernel panic")
	}
	if !errors.Is(err, ErrKernelPanicked) {
		t.Errorf("Exe error %v does not wrap ErrKernelPanicked", err)
	}
	if !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("Exe error %v does not wrap ErrTypeMismatch", err)
	}
}

func TestDoubleExeWrapsSentinel(t *testing.T) {
	m := NewMap()
	if _, err := m.Link(newGen(3), newCollect()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); !errors.Is(err, ErrAlreadyExecuted) {
		t.Errorf("second Exe: %v", err)
	}
}
