package raft

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// FuzzGraphRewrite drives a random script of rewrite transactions —
// splice an identity relay in at the head, splice one out, stage an
// invalid change, commit an empty transaction — against a live
// gen -> collect pipeline. Relays are pure pass-throughs, so whatever
// the interleaving of commits, drains and the run's natural completion,
// the output must be the untouched identity sequence: any loss,
// duplication or reorder the protocol lets slip is a crash here.
func FuzzGraphRewrite(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 1, 2, 3, 1})
	f.Add([]byte{0, 0, 0, 1, 1, 1})
	f.Add([]byte{2, 3, 2, 3, 0})
	f.Add([]byte{1, 0, 2, 0, 1, 3})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 24 {
			script = script[:24]
		}
		const n = 4000
		m := NewMap()
		gen := newGen(n)
		sink := newPacedCollect(500 * time.Microsecond)
		l0 := m.MustLink(gen, sink)

		other := NewMap()
		foreign := other.MustLink(newGen(4), newCollect())

		ex, err := m.ExeAsync(WithDynamicResize(false))
		if err != nil {
			t.Fatal(err)
		}
		rw := ex.Rewriter()

		// benign: the run raced the script — the producer finished (it can
		// no longer be paused or rewired) or the execution completed.
		benign := func(err error) bool {
			return strings.Contains(err.Error(), "already completed") ||
				strings.Contains(err.Error(), "step boundary")
		}

		// chain[0]=gen ... chain[len-1]=sink; links[i] connects chain[i]
		// to chain[i+1].
		chain := []Kernel{gen, sink}
		links := []*Link{l0}
		relays := 0

	script:
		for _, b := range script {
			switch b % 4 {
			case 0: // splice a relay in at the head
				if len(chain) >= 6 {
					continue
				}
				relay := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
					v, err := Pop[int64](k.In("0"))
					if err != nil {
						return Stop
					}
					if err := Push(k.Out("0"), v); err != nil {
						return Stop
					}
					return Proceed
				})
				relay.SetName(fmt.Sprintf("fuzz-relay-%d", relays))
				relays++
				tx := rw.Begin()
				if err := tx.RemoveLink(links[0]); err != nil {
					t.Fatal(err)
				}
				nl1, err1 := tx.Link(gen, relay)
				nl2, err2 := tx.Link(relay, chain[1])
				if err1 != nil || err2 != nil {
					t.Fatalf("staging splice-in: %v / %v", err1, err2)
				}
				if err := tx.Commit(); err != nil {
					if benign(err) {
						break script
					}
					t.Fatalf("splice-in commit: %v", err)
				}
				chain = append([]Kernel{gen, relay}, chain[1:]...)
				links = append([]*Link{nl1, nl2}, links[1:]...)
			case 1: // splice the head relay out
				if len(chain) == 2 {
					continue
				}
				tx := rw.Begin()
				if err := tx.RemoveLink(links[0]); err != nil {
					t.Fatal(err)
				}
				if err := tx.RemoveLink(links[1]); err != nil {
					t.Fatal(err)
				}
				if err := tx.RemoveKernel(chain[1]); err != nil {
					t.Fatal(err)
				}
				nl, err := tx.Link(gen, chain[2])
				if err != nil {
					t.Fatalf("staging splice-out: %v", err)
				}
				if err := tx.Commit(); err != nil {
					if benign(err) {
						break script
					}
					t.Fatalf("splice-out commit: %v", err)
				}
				chain = append([]Kernel{gen}, chain[2:]...)
				links = append([]*Link{nl}, links[2:]...)
			case 2: // invalid transaction: must refuse, must not disturb
				tx := rw.Begin()
				if err := tx.RemoveLink(foreign); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err == nil {
					t.Fatal("foreign-link removal committed")
				}
			case 3: // empty transaction: a committed no-op
				if err := rw.Begin().Commit(); err != nil {
					t.Fatalf("empty commit: %v", err)
				}
			}
		}

		if _, err := ex.Wait(); err != nil {
			t.Fatal(err)
		}
		got := sink.values()
		if len(got) != n {
			t.Fatalf("received %d values, want %d (script %v)", len(got), n, script)
		}
		for i, v := range got {
			if v != int64(i) {
				t.Fatalf("index %d: value %d, want %d (script %v)", i, v, i, script)
			}
		}
	})
}
