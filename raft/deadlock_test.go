package raft

import (
	"strings"
	"testing"
	"time"
)

// TestDeadlockDetected builds a classic broadcast deadlock: a tee copies
// every element to two branches with tiny pinned queues, but the joining
// kernel consumes the branches at different rates (two pops from "b" per
// pop from "a"). Branch a fills while the join waits on b; the tee blocks
// pushing to a; global freeze. Without detection Exe would hang forever.
func TestDeadlockDetected(t *testing.T) {
	m := NewMap()

	src := NewLambda[int64](0, 1, func(k *LambdaKernel) Status {
		if err := Push(k.Out("0"), int64(1)); err != nil {
			return Stop
		}
		return Proceed // unbounded source
	})

	// Inline tee: copy input to both outputs.
	tee := &teeKernel{}
	AddInput[int64](tee, "in")
	AddOutput[int64](tee, "a")
	AddOutput[int64](tee, "b")

	join := &lopsidedJoin{}
	AddInput[int64](join, "a")
	AddInput[int64](join, "b")

	if _, err := m.Link(src, tee); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(tee, join, From("a"), To("a"), Cap(2), MaxCap(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(tee, join, From("b"), To("b"), Cap(2), MaxCap(2)); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	var rep *Report
	go func() {
		var err error
		rep, err = m.Exe(
			WithDynamicResize(false),
			WithDeadlockDetection(200*time.Millisecond),
		)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("deadlocked app returned without error")
		}
		if !strings.Contains(err.Error(), "deadlock") {
			t.Fatalf("err = %v, want deadlock diagnostic", err)
		}
		if !strings.Contains(err.Error(), "parked streams") {
			t.Fatalf("diagnostic missing stream details: %v", err)
		}
		foundEvent := false
		for _, e := range rep.MonitorEvents {
			if e.Kind == "deadlock" {
				foundEvent = true
			}
		}
		if !foundEvent {
			t.Fatalf("no deadlock event in report: %+v", rep.MonitorEvents)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("detector did not fire; application hung")
	}
}

type teeKernel struct{ KernelBase }

func (k *teeKernel) Run() Status {
	v, err := Pop[int64](k.In("in"))
	if err != nil {
		return Stop
	}
	if err := Push(k.Out("a"), v); err != nil {
		return Stop
	}
	if err := Push(k.Out("b"), v); err != nil {
		return Stop
	}
	return Proceed
}

type lopsidedJoin struct{ KernelBase }

func (k *lopsidedJoin) Run() Status {
	if _, err := Pop[int64](k.In("a")); err != nil {
		return Stop
	}
	// Consume b twice per a: rates diverge, branch a backs up.
	if _, err := Pop[int64](k.In("b")); err != nil {
		return Stop
	}
	if _, err := Pop[int64](k.In("b")); err != nil {
		return Stop
	}
	return Proceed
}

// TestNoFalsePositiveOnSlowKernel: a kernel computing for longer than the
// grace period (without touching its queues) must not be diagnosed as
// deadlock, because it is never parked.
func TestNoFalsePositiveOnSlowKernel(t *testing.T) {
	m := NewMap()
	slow := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
		v, err := Pop[int64](k.In("0"))
		if err != nil {
			return Stop
		}
		time.Sleep(300 * time.Millisecond) // longer than the grace period
		if err := Push(k.Out("0"), v); err != nil {
			return Stop
		}
		return Proceed
	})
	sink := newCollect()
	if _, err := m.Link(newGen(3), slow); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(slow, sink); err != nil {
		t.Fatal(err)
	}
	_, err := m.Exe(WithDeadlockDetection(100 * time.Millisecond))
	if err != nil {
		t.Fatalf("false positive: %v", err)
	}
	if len(sink.values()) != 3 {
		t.Fatalf("received %d", len(sink.values()))
	}
}

func TestDeadlockDetectionOffByDefault(t *testing.T) {
	cfg := defaultConfig()
	if cfg.DeadlockGrace != 0 {
		t.Fatal("deadlock detection must be opt-in")
	}
	WithDeadlockDetection(0)(&cfg)
	if cfg.DeadlockGrace != time.Second {
		t.Fatalf("zero grace must default to 1s, got %v", cfg.DeadlockGrace)
	}
}
