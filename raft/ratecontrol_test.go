package raft

import (
	"net"
	"strings"
	"testing"
	"time"
)

// slowSink pops one element per Run and burns a little CPU, keeping the
// pipeline alive long enough for the rate estimator to prime (λ̂ needs ~5
// estimation windows ≈ 10ms).
type slowSink struct {
	KernelBase
	n    int64
	spin time.Duration
}

func newSlowSink(spin time.Duration) *slowSink {
	k := &slowSink{spin: spin}
	AddInput[int64](k, "in")
	return k
}

func (s *slowSink) Run() Status {
	if _, err := Pop[int64](s.In("in")); err != nil {
		return Stop
	}
	s.n++
	for t0 := time.Now(); time.Since(t0) < s.spin; {
	}
	return Proceed
}

func TestServiceRateControlEndToEnd(t *testing.T) {
	const items = 30_000
	m := NewMap()
	sink := newSlowSink(2 * time.Microsecond)
	if _, err := m.Link(newGen(items), sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithServiceRateControl())
	if err != nil {
		t.Fatal(err)
	}
	if sink.n != items {
		t.Fatalf("sink consumed %d of %d", sink.n, items)
	}

	// The report must carry primed λ̂/µ̂/ρ̂ on the one link and µ̂ on the
	// consumer (the run lasts tens of milliseconds; priming takes ~10ms).
	if len(rep.Links) != 1 {
		t.Fatalf("links = %d", len(rep.Links))
	}
	l := rep.Links[0]
	if l.LambdaHat <= 0 || l.MuHat <= 0 || l.RhoHat <= 0 {
		t.Fatalf("link estimates missing: λ̂=%v µ̂=%v ρ̂=%v", l.LambdaHat, l.MuHat, l.RhoHat)
	}
	// A blocking-contaminated µ̂ would read ρ̂≈1 regardless of load; the
	// busy-time estimate must keep a saturated pipe's ρ̂ in a sane band.
	if l.RhoHat > 5 {
		t.Fatalf("ρ̂ = %v, implausible", l.RhoHat)
	}
	var muSeen bool
	for _, k := range rep.Kernels {
		if k.MuHat > 0 {
			muSeen = true
		}
	}
	if !muSeen {
		t.Fatal("no kernel reports µ̂")
	}
	// The rendered report grows the estimate columns only when estimates
	// exist.
	if s := rep.String(); !strings.Contains(s, "λ̂/s") || !strings.Contains(s, "ρ̂") {
		t.Fatalf("report missing estimate columns:\n%s", s)
	}
}

func TestServiceRateControlMetricsGauges(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	scraper := &scrapingObserver{addr: ln.Addr().String()}

	m := NewMap()
	sink := newSlowSink(time.Microsecond)
	if _, err := m.Link(newGen(50_000), sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(
		WithServiceRateControl(),
		WithMetricsListener(ln),
		WithObserver(1_000_000, scraper.observe), // 1ms
	); err != nil {
		t.Fatal(err)
	}
	scraper.mu.Lock()
	body := scraper.body
	scraper.mu.Unlock()
	if body == "" {
		t.Fatal("no scrape landed during the run")
	}
	for _, want := range []string{
		"raft_link_lambda_hat{link=",
		"raft_link_mu_hat{link=",
		"raft_link_rho_hat{link=",
		"raft_kernel_mu_hat{kernel=",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%.2000s", want, body)
		}
	}
}

func TestLiveStatsCarryEstimates(t *testing.T) {
	var sawLambda, sawMuHat bool
	obs := func(ls LiveStats) {
		for _, l := range ls.Links {
			if l.LambdaHat > 0 {
				sawLambda = true
			}
		}
		for _, k := range ls.Kernels {
			if k.MuHat > 0 {
				sawMuHat = true
			}
		}
	}
	m := NewMap()
	sink := newSlowSink(2 * time.Microsecond)
	if _, err := m.Link(newGen(30_000), sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(WithServiceRateControl(), WithObserver(1_000_000, obs)); err != nil {
		t.Fatal(err)
	}
	if !sawLambda || !sawMuHat {
		t.Fatalf("live stats estimates: λ̂ seen=%v µ̂ seen=%v", sawLambda, sawMuHat)
	}
}
