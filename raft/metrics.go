package raft

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"raftlib/internal/core"
	"raftlib/internal/monitor"
	"raftlib/internal/qmodel"
	"raftlib/internal/ringbuffer"
	"raftlib/internal/scheduler"
	"raftlib/internal/trace"
)

// WriteChromeTrace writes the run's event trace as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing): one track per kernel with its
// invocations as slices, plus monitor, supervisor and bridge decisions as
// instant markers. Requires WithTrace.
func (r *Report) WriteChromeTrace(w io.Writer) error {
	if r.Trace == nil {
		return errors.New("raft: no trace recorded (run with WithTrace)")
	}
	return r.Trace.WriteChromeTrace(w, TraceNames(r))
}

// execHealth tracks the run's lifecycle phase for the /healthz readiness
// endpoint: starting (allocation through scheduler launch), running
// (kernels executing), draining (kernels done, runtime tearing down),
// done (report built).
type execHealth struct{ phase atomic.Int32 }

const (
	healthStarting int32 = iota
	healthRunning
	healthDraining
	healthDone
)

func (h *execHealth) set(p int32) {
	if h != nil {
		h.phase.Store(p)
	}
}

func (h *execHealth) state() string {
	if h == nil {
		return "starting"
	}
	switch h.phase.Load() {
	case healthRunning:
		return "running"
	case healthDraining:
		return "draining"
	case healthDone:
		return "done"
	}
	return "starting"
}

// metricsServer serves the Prometheus text endpoint (plus pprof) for the
// duration of one Exe. Scrapes read live engine state through atomics, so
// serving concurrently with execution is safe and nearly free when nobody
// scrapes.
type metricsServer struct {
	ln   net.Listener
	addr string // captured at bind time; valid after the listener closes
	srv  *http.Server
	done chan struct{}
}

func startMetrics(cfg *Config, links []*core.LinkInfo, actors []*core.Actor,
	scalers []*groupScaler, m *Map, mon *monitor.Monitor, rec *trace.Recorder,
	est *qmodel.Estimator, health *execHealth, sched scheduler.StatsReporter) (*metricsServer, error) {

	ln := cfg.MetricsListener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("raft: metrics listener: %w", err)
		}
	}
	rig, flight := cfg.markers, cfg.flight
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, links, actors, scalers, m, mon, rec, est, rig, flight, sched)
	})
	// /healthz is the readiness probe: 200 while the graph is executing,
	// 503 before launch and once draining/done. The body reports the
	// phase and the age of the newest trace-bus event (-1 without
	// WithTrace) — a frozen pipeline shows up as a growing age long
	// before deadlock detection fires.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		state := health.state()
		age := int64(-1)
		if rec != nil {
			if last := rec.LastEventNs(); last > 0 {
				age = time.Now().UnixNano() - last
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if state != "running" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "{\"state\":%q,\"lastTraceEventAgeNs\":%d}\n", state, age)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ms := &metricsServer{
		ln:   ln,
		addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux},
		done: make(chan struct{}),
	}
	go func() {
		defer close(ms.done)
		_ = ms.srv.Serve(ln)
	}()
	return ms, nil
}

// Addr returns the bound address of the metrics endpoint.
func (ms *metricsServer) Addr() string { return ms.addr }

// Stop closes the endpoint and waits for the serve loop to exit.
func (ms *metricsServer) Stop() {
	_ = ms.srv.Close()
	<-ms.done
}

// writeMetrics renders the full exposition. One writer, no allocation
// amortization needed — scrapes are rare relative to the hot path.
func writeMetrics(w io.Writer, links []*core.LinkInfo, actors []*core.Actor,
	scalers []*groupScaler, m *Map, mon *monitor.Monitor, rec *trace.Recorder,
	est *qmodel.Estimator, rig *markerRig, flight *trace.FlightRecorder,
	sched scheduler.StatsReporter) {

	var b strings.Builder

	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}

	// Per-link counters and gauges.
	type linkRow struct {
		name string
		tel  ringbuffer.TelemetrySnapshot
		qlen int
		qcap int
	}
	rows := make([]linkRow, len(links))
	for i, l := range links {
		rows[i] = linkRow{l.Name, l.Queue.Telemetry().Snapshot(), l.Queue.Len(), l.Queue.Cap()}
	}
	linkCounters := []struct {
		name, help string
		get        func(ringbuffer.TelemetrySnapshot) uint64
	}{
		{"raft_link_pushes_total", "Elements pushed onto the stream.", func(t ringbuffer.TelemetrySnapshot) uint64 { return t.Pushes }},
		{"raft_link_pops_total", "Elements popped from the stream.", func(t ringbuffer.TelemetrySnapshot) uint64 { return t.Pops }},
		{"raft_link_write_block_ns_total", "Producer block time in nanoseconds.", func(t ringbuffer.TelemetrySnapshot) uint64 { return t.WriteBlockNs }},
		{"raft_link_read_block_ns_total", "Consumer block time in nanoseconds.", func(t ringbuffer.TelemetrySnapshot) uint64 { return t.ReadBlockNs }},
		{"raft_link_grows_total", "Monitor-driven capacity grows.", func(t ringbuffer.TelemetrySnapshot) uint64 { return t.Grows }},
		{"raft_link_shrinks_total", "Monitor-driven capacity shrinks.", func(t ringbuffer.TelemetrySnapshot) uint64 { return t.Shrinks }},
		{"raft_link_spin_yields_total", "Lock-free back-off spin-to-yield escalations.", func(t ringbuffer.TelemetrySnapshot) uint64 { return t.SpinYields }},
		{"raft_link_spin_sleeps_total", "Lock-free back-off yield-to-sleep escalations.", func(t ringbuffer.TelemetrySnapshot) uint64 { return t.SpinSleeps }},
		{"raft_link_dropped_total", "Elements discarded by the best-effort overflow policy.", func(t ringbuffer.TelemetrySnapshot) uint64 { return t.Dropped }},
		{"raft_link_views_total", "Completed zero-copy borrow/release view cycles.", func(t ringbuffer.TelemetrySnapshot) uint64 { return t.Views }},
	}
	for _, c := range linkCounters {
		counter(c.name, c.help)
		for _, r := range rows {
			fmt.Fprintf(&b, "%s{link=%q} %d\n", c.name, r.name, c.get(r.tel))
		}
	}
	gauge("raft_link_len", "Instantaneous queue length.")
	for _, r := range rows {
		fmt.Fprintf(&b, "raft_link_len{link=%q} %d\n", r.name, r.qlen)
	}
	gauge("raft_link_cap", "Current queue capacity.")
	for _, r := range rows {
		fmt.Fprintf(&b, "raft_link_cap{link=%q} %d\n", r.name, r.qcap)
	}
	gauge("raft_link_batch", "Adaptive transfer batch size (0 = no decision).")
	for i, r := range rows {
		fmt.Fprintf(&b, "raft_link_batch{link=%q} %d\n", r.name, links[i].Batch.Get())
	}
	counter("raft_link_view_hold_seconds_total", "Cumulative wall time zero-copy views were held open.")
	for _, r := range rows {
		fmt.Fprintf(&b, "raft_link_view_hold_seconds_total{link=%q} %g\n",
			r.name, float64(r.tel.ViewHoldNs)/1e9)
	}

	// End-to-end latency provenance: per-flow histograms folded from
	// retired markers, labeled by tenant and source. The bucket edges are
	// the marker domain's log2-nanosecond edges converted to seconds.
	if rig != nil {
		flows := rig.dom.Flows()
		if len(flows) > 0 {
			fmt.Fprintf(&b, "# HELP raft_e2e_latency_seconds End-to-end (ingest to sink) latency of sampled markers.\n# TYPE raft_e2e_latency_seconds histogram\n")
			for _, f := range flows {
				tenant := f.Tenant
				if tenant == "" {
					tenant = "default"
				}
				var cum uint64
				for i, n := range f.Buckets {
					cum += n
					if n == 0 && i > 40 {
						continue // latencies beyond ~2^41 ns (~36 min) don't occur
					}
					fmt.Fprintf(&b, "raft_e2e_latency_seconds_bucket{tenant=%q,source=%q,le=\"%g\"} %d\n",
						tenant, f.Source, float64(uint64(1)<<uint(i+1)-1)/1e9, cum)
				}
				fmt.Fprintf(&b, "raft_e2e_latency_seconds_bucket{tenant=%q,source=%q,le=\"+Inf\"} %d\n",
					tenant, f.Source, f.Count)
				fmt.Fprintf(&b, "raft_e2e_latency_seconds_sum{tenant=%q,source=%q} %g\n",
					tenant, f.Source, float64(f.SumNs)/1e9)
				fmt.Fprintf(&b, "raft_e2e_latency_seconds_count{tenant=%q,source=%q} %d\n",
					tenant, f.Source, f.Count)
			}
		}
		counter("raft_markers_retired_total", "Latency markers retired at sinks.")
		fmt.Fprintf(&b, "raft_markers_retired_total %d\n", rig.dom.Retired())
	}
	if flight != nil {
		counter("raft_flight_dumps_total", "Flight-recorder post-mortem artifacts written.")
		fmt.Fprintf(&b, "raft_flight_dumps_total %d\n", flight.Dumps())
	}

	// Online rate estimates (the controller's inputs, observable so its
	// decisions are auditable; only present under WithServiceRateControl).
	if est != nil {
		type rateRow struct {
			name string
			r    qmodel.LinkRates
		}
		rrows := make([]rateRow, 0, len(links))
		for i, l := range links {
			if r, ok := est.Link(i); ok {
				rrows = append(rrows, rateRow{l.Name, r})
			}
		}
		gauge("raft_link_lambda_hat", "Online arrival-rate estimate (elements/s).")
		for _, rr := range rrows {
			fmt.Fprintf(&b, "raft_link_lambda_hat{link=%q} %g\n", rr.name, rr.r.Lambda)
		}
		gauge("raft_link_mu_hat", "Online consumer drain-rate estimate (elements/s).")
		for _, rr := range rrows {
			fmt.Fprintf(&b, "raft_link_mu_hat{link=%q} %g\n", rr.name, rr.r.Mu)
		}
		gauge("raft_link_rho_hat", "Online utilization estimate lambda_hat/mu_hat.")
		for _, rr := range rrows {
			fmt.Fprintf(&b, "raft_link_rho_hat{link=%q} %g\n", rr.name, rr.r.Rho)
		}
		gauge("raft_kernel_mu_hat", "Online non-blocking service-rate estimate (elements/s).")
		for _, a := range actors {
			if r, ok := est.Kernel(int32(a.ID)); ok {
				fmt.Fprintf(&b, "raft_kernel_mu_hat{kernel=%q} %g\n", a.Name, r.MuElems)
			}
		}
	}

	// Per-link occupancy histogram: cumulative counts over the log2 bucket
	// upper edges. The sum is reconstructed from bucket midpoints (the hot
	// path records one counter per push, not an exact sum).
	fmt.Fprintf(&b, "# HELP raft_link_occupancy Queue occupancy at push time (elements).\n# TYPE raft_link_occupancy histogram\n")
	for _, r := range rows {
		var cum, count uint64
		var sum float64
		for i, n := range r.tel.Occupancy {
			count += n
			mid := 1.0
			if i > 0 {
				mid = 1.5 * float64(uint64(1)<<uint(i)) // midpoint of [2^i, 2^(i+1))
			}
			sum += float64(n) * mid
			cum += n
			fmt.Fprintf(&b, "raft_link_occupancy_bucket{link=%q,le=\"%d\"} %d\n",
				r.name, uint64(1)<<uint(i+1)-1, cum)
		}
		fmt.Fprintf(&b, "raft_link_occupancy_bucket{link=%q,le=\"+Inf\"} %d\n", r.name, count)
		fmt.Fprintf(&b, "raft_link_occupancy_sum{link=%q} %g\n", r.name, sum)
		fmt.Fprintf(&b, "raft_link_occupancy_count{link=%q} %d\n", r.name, count)
	}

	// Per-kernel counters and service-time histogram.
	counter("raft_kernel_runs_total", "Kernel invocations.")
	for _, a := range actors {
		fmt.Fprintf(&b, "raft_kernel_runs_total{kernel=%q} %d\n", a.Name, a.Service.Count())
	}
	counter("raft_kernel_busy_ns_total", "Cumulative kernel busy time in nanoseconds.")
	for _, a := range actors {
		fmt.Fprintf(&b, "raft_kernel_busy_ns_total{kernel=%q} %d\n", a.Name, a.Service.BusyNanos())
	}
	counter("raft_kernel_restarts_total", "Supervised kernel restarts.")
	for _, a := range actors {
		fmt.Fprintf(&b, "raft_kernel_restarts_total{kernel=%q} %d\n", a.Name, a.Restarts.Load())
	}
	fmt.Fprintf(&b, "# HELP raft_kernel_service_ns Kernel service time (nanoseconds).\n# TYPE raft_kernel_service_ns histogram\n")
	for _, a := range actors {
		snap := a.Service.Hist().Snapshot()
		var cum uint64
		for i, n := range snap.Buckets {
			cum += n
			if n == 0 && i > 40 {
				continue // durations beyond ~2^41 ns (~36 min) don't occur
			}
			fmt.Fprintf(&b, "raft_kernel_service_ns_bucket{kernel=%q,le=\"%d\"} %d\n",
				a.Name, uint64(1)<<uint(i+1)-1, cum)
		}
		fmt.Fprintf(&b, "raft_kernel_service_ns_bucket{kernel=%q,le=\"+Inf\"} %d\n", a.Name, snap.Count)
		fmt.Fprintf(&b, "raft_kernel_service_ns_sum{kernel=%q} %d\n", a.Name, snap.Sum)
		fmt.Fprintf(&b, "raft_kernel_service_ns_count{kernel=%q} %d\n", a.Name, snap.Count)
	}

	// Replicated groups.
	if len(scalers) > 0 {
		gauge("raft_group_active_replicas", "Active replicas in the group.")
		for _, s := range scalers {
			fmt.Fprintf(&b, "raft_group_active_replicas{group=%q} %d\n", s.Name(), s.Active())
		}
		gauge("raft_group_max_replicas", "Replica ceiling of the group.")
		for _, s := range scalers {
			fmt.Fprintf(&b, "raft_group_max_replicas{group=%q} %d\n", s.Name(), s.Max())
		}
	}

	// Bridges.
	var bridges []BridgeReport
	for _, k := range m.kernels {
		if br, ok := k.(BridgeReporter); ok {
			if rep, carried := br.BridgeStats(); carried {
				bridges = append(bridges, rep)
			}
		}
	}
	if len(bridges) > 0 {
		counter("raft_bridge_reconnects_total", "Bridge reconnections.")
		for _, br := range bridges {
			fmt.Fprintf(&b, "raft_bridge_reconnects_total{stream=%q} %d\n", br.Stream, br.Reconnects)
		}
		counter("raft_bridge_replayed_total", "Frames replayed after reconnect.")
		for _, br := range bridges {
			fmt.Fprintf(&b, "raft_bridge_replayed_total{stream=%q} %d\n", br.Stream, br.Replayed)
		}
		counter("raft_bridge_dropped_total", "Elements dropped under the Drop policy.")
		for _, br := range bridges {
			fmt.Fprintf(&b, "raft_bridge_dropped_total{stream=%q} %d\n", br.Stream, br.Dropped)
		}
		counter("raft_bridge_downtime_ns_total", "Cumulative bridge downtime in nanoseconds.")
		for _, br := range bridges {
			fmt.Fprintf(&b, "raft_bridge_downtime_ns_total{stream=%q} %d\n", br.Stream, int64(br.Downtime))
		}
	}

	// Runtime-wide.
	if mon != nil {
		counter("raft_monitor_ticks_total", "Monitor loop iterations.")
		fmt.Fprintf(&b, "raft_monitor_ticks_total %d\n", mon.Ticks())
		counter("raft_monitor_resizes_total", "Monitor resize operations.")
		fmt.Fprintf(&b, "raft_monitor_resizes_total %d\n", mon.Resizes())
	}
	if rec != nil {
		counter("raft_trace_dropped_total", "Trace events overwritten by wraparound.")
		fmt.Fprintf(&b, "raft_trace_dropped_total %d\n", rec.Dropped())
	}

	// Scheduler activity (pool and work-stealing schedulers only; the
	// default goroutine-per-kernel scheduler has no counters to report).
	if sched != nil {
		ss := sched.SchedStats()
		gauge("raft_sched_workers", "Scheduler worker goroutines.")
		fmt.Fprintf(&b, "raft_sched_workers{scheduler=%q} %d\n", ss.Scheduler, ss.Workers)
		gauge("raft_sched_cross_shard_links", "Links whose endpoints landed on different shards.")
		fmt.Fprintf(&b, "raft_sched_cross_shard_links{scheduler=%q} %d\n", ss.Scheduler, ss.CrossShardLinks)
		schedCounters := []struct {
			name, help string
			v          uint64
		}{
			{"raft_sched_steals_total", "Successful steal operations between worker deques.", ss.Steals},
			{"raft_sched_stolen_tasks_total", "Kernels migrated by steals.", ss.StolenTasks},
			{"raft_sched_parks_total", "Kernel park transitions (stalled, descheduled).", ss.Parks},
			{"raft_sched_wakes_total", "Kernel wakes from link readiness hooks.", ss.Wakes},
			{"raft_sched_rescues_total", "Watchdog rescues of parked kernels.", ss.Rescues},
			{"raft_sched_stalled_passes_total", "Scheduling passes that made no progress.", ss.StalledPasses},
		}
		for _, c := range schedCounters {
			counter(c.name, c.help)
			fmt.Fprintf(&b, "%s{scheduler=%q} %d\n", c.name, ss.Scheduler, c.v)
		}
	}

	_, _ = io.WriteString(w, b.String())
}

// pollMetricsOnce is a test helper: fetch the endpoint body with a short
// timeout.
func pollMetricsOnce(addr string) (string, error) {
	c := &http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get("http://" + addr + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}
