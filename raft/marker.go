package raft

import (
	"time"

	"raftlib/internal/trace"
)

// Latency provenance carriage. Exe installs one trace.MarkerLane per link
// (shared by both endpoint ports, like the link's BatchControl) and a
// markerRig on every kernel. Markers are stamped at ingest ports (source
// kernels and gateway bindings), picked up by the consuming kernel's pop,
// re-deposited by its next push — growing one Hop per stage — and retired
// into the domain's histograms when a sink (a kernel with no output
// ports) picks them up. Bridge endpoints opt out of both stamping and
// retirement with SetMarkerForwarder and carry markers across the wire
// themselves.
//
// Disabled cost: p.lane stays nil, so every port operation pays exactly
// one pointer check. Enabled cost: one atomic load per pop (the lane's
// empty check) and a length check per push; everything heavier is behind
// the sampled-marker-present path.

// markerRig couples one execution's marker domain with its trace bus (rec
// may be nil: markers aggregate without a recorder).
type markerRig struct {
	dom *trace.MarkerDomain
	rec *trace.Recorder
}

// markPop relays lane markers to the owning kernel after a successful pop
// of any size.
func (p *Port) markPop() {
	if p.lane == nil || p.lane.Empty() {
		return
	}
	p.owner.pickupMarks(p.lane)
}

// markPush stamps and forwards markers after a successful push of n
// elements.
func (p *Port) markPush(n int) {
	if p.lane == nil {
		return
	}
	k := p.owner
	if p.stampEvery > 0 && k.marks != nil {
		if uint32(n) >= p.stampLeft {
			p.stampLeft = p.stampEvery
			now := time.Now().UnixNano()
			m := k.marks.dom.Stamp(p.stampTenant, p.stampSource, now)
			if k.marks.rec != nil {
				k.marks.rec.Emit(trace.Event{Actor: k.actor, Kind: trace.MarkStamp,
					At: now, Arg: int64(m.ID), Label: m.Flow()})
			}
			p.lane.Deposit(m, now)
		} else {
			p.stampLeft -= uint32(n)
		}
	}
	if k != nil && len(k.pendingMarks) > 0 {
		now := time.Now().UnixNano()
		for _, m := range k.pendingMarks {
			p.lane.Deposit(m, now)
		}
		clear(k.pendingMarks)
		k.pendingMarks = k.pendingMarks[:0]
	}
}

// pickupMarks drains a lane into the kernel: sinks retire markers on the
// spot, everything else holds them for the next push.
func (k *KernelBase) pickupMarks(lane *trace.MarkerLane) {
	rig := k.marks
	if rig == nil {
		return
	}
	now := time.Now().UnixNano()
	ms := lane.Take(now)
	if len(ms) == 0 {
		return
	}
	if rig.rec != nil {
		for _, m := range ms {
			rig.rec.Emit(trace.Event{Actor: k.actor, Kind: trace.MarkHop, At: now,
				Prev: m.PendingQueueNs(), Arg: int64(m.ID), Label: lane.Name()})
		}
	}
	if len(k.outNames) == 0 && !k.markForward {
		for _, m := range ms {
			e2e := rig.dom.Retire(m, now)
			if rig.rec != nil {
				rig.rec.Emit(trace.Event{Actor: k.actor, Kind: trace.MarkRetire, At: now,
					Prev: int64(m.ID), Arg: int64(e2e), Label: m.Flow()})
			}
		}
		return
	}
	k.pendingMarks = append(k.pendingMarks, ms...)
}

// forwardMarks relays markers across a split/merge adapter, whose movers
// operate on the raw queues and bypass the port hooks: the adapter
// contributes one hop (its input-lane wait; the move itself is the
// kernel-side share).
func forwardMarks(in, out *Port) {
	if in.lane == nil || in.lane.Empty() || out.lane == nil {
		return
	}
	now := time.Now().UnixNano()
	for _, m := range in.lane.Take(now) {
		out.lane.Deposit(m, now)
	}
}

// SetMarkerForwarder marks the kernel as a marker carrier: it neither
// stamps fresh markers (even when it looks like a source) nor retires
// picked-up ones (even when it looks like a sink). Bridge endpoints call
// it — the sender ships TakeMarkers over the wire, the receiver re-injects
// them with DepositMarkers.
func (k *KernelBase) SetMarkerForwarder() { k.markForward = true }

// TakeMarkers removes and returns the latency markers the kernel has
// picked up but not yet forwarded (nil when none). Used by forwarding
// carriers that hand markers to a non-lane transport.
func (k *KernelBase) TakeMarkers() []*trace.Marker {
	if len(k.pendingMarks) == 0 {
		return nil
	}
	ms := k.pendingMarks
	k.pendingMarks = nil
	return ms
}

// DepositMarkers parks externally carried markers on the kernel's first
// marker-enabled output lane; a no-op when latency markers are off in
// this execution (the markers are dropped, never the elements).
func (k *KernelBase) DepositMarkers(ms []*trace.Marker) {
	if len(ms) == 0 {
		return
	}
	for _, name := range k.outNames {
		p := k.outPorts[name]
		if p.lane != nil {
			now := time.Now().UnixNano()
			for _, m := range ms {
				p.lane.Deposit(m, now)
			}
			return
		}
	}
}
