package raft

import (
	"testing"
	"testing/quick"
)

func runReorderableApp(t *testing.T, n int64, replicas int) []int64 {
	t.Helper()
	m := NewMap()
	work := newWork() // 1:1 kernel: doubles each element
	sink := newCollect()
	if _, err := m.Link(newGen(n), work, AsReorderable()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithAutoReplicate(replicas))
	if err != nil {
		t.Fatal(err)
	}
	// Ordered groups register no scaler.
	if len(rep.Groups) != 0 {
		t.Fatalf("ordered group registered a scaler: %+v", rep.Groups)
	}
	// source + ordered-split + replicas + ordered-merge + sink.
	if want := 4 + replicas; len(rep.Kernels) != want {
		t.Fatalf("kernel count = %d, want %d", len(rep.Kernels), want)
	}
	return sink.values()
}

func TestReorderablePreservesOrder(t *testing.T) {
	const n = 50_000
	got := runReorderableApp(t, n, 4)
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int64(2*i) {
			t.Fatalf("out[%d] = %d, want %d: order not restored", i, v, 2*i)
		}
	}
}

func TestReorderableVariousWidths(t *testing.T) {
	for _, r := range []int{2, 3, 5, 8} {
		got := runReorderableApp(t, 1000, r)
		for i, v := range got {
			if v != int64(2*i) {
				t.Fatalf("width %d: out[%d] = %d, want %d", r, i, v, 2*i)
			}
		}
	}
}

func TestReorderableEmptyStream(t *testing.T) {
	got := runReorderableApp(t, 0, 3)
	if len(got) != 0 {
		t.Fatalf("received %d from empty stream", len(got))
	}
}

func TestReorderableCountNotMultipleOfWidth(t *testing.T) {
	// Element counts that don't divide evenly across the replicas exercise
	// the tail drain of the ordered merge.
	for _, n := range []int64{1, 2, 3, 7, 97, 101} {
		got := runReorderableApp(t, n, 4)
		if int64(len(got)) != n {
			t.Fatalf("n=%d: received %d", n, len(got))
		}
		for i, v := range got {
			if v != int64(2*i) {
				t.Fatalf("n=%d: out[%d] = %d", n, i, v)
			}
		}
	}
}

func TestReorderablePropertyOrderAndCompleteness(t *testing.T) {
	f := func(count uint16, widthSeed uint8) bool {
		n := int64(count % 2000)
		width := int(widthSeed%6) + 2
		m := NewMap()
		work := newWork()
		sink := newCollect()
		if _, err := m.Link(newGen(n), work, AsReorderable()); err != nil {
			return false
		}
		if _, err := m.Link(work, sink); err != nil {
			return false
		}
		if _, err := m.Exe(WithAutoReplicate(width)); err != nil {
			return false
		}
		got := sink.values()
		if int64(len(got)) != n {
			return false
		}
		for i, v := range got {
			if v != int64(2*i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReorderableWithoutAutoReplicateRunsSequentially(t *testing.T) {
	// AsReorderable without WithAutoReplicate: plain sequential link.
	m := NewMap()
	work := newWork()
	sink := newCollect()
	if _, err := m.Link(newGen(100), work, AsReorderable()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Kernels) != 3 {
		t.Fatalf("kernel count = %d, want 3 (no rewrite)", len(rep.Kernels))
	}
	got := sink.values()
	for i, v := range got {
		if v != int64(2*i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
