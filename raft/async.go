package raft

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file implements the paper's asynchronous signaling pathway (§4.2):
// "Asynchronous signaling (i.e., immediately available to downstream
// kernels) is also available. Future implementations will utilize the
// asynchronous signaling pathway for global exception handling." Both the
// pathway and the global exception handling it enables are provided.
//
// Synchronized signals ride the stream with their data element (PushSig /
// PopSig); an asynchronous signal posted on a port is visible to the
// opposite endpoint on its very next check, regardless of how many
// elements are still buffered between them.

// asyncCell is the out-of-band mailbox shared by a link's two ports.
type asyncCell struct {
	v atomic.Uint32
}

// SendAsync posts an asynchronous signal on the port's stream; it
// overwrites any signal not yet consumed (signals are level, not queued).
func (p *Port) SendAsync(s Signal) {
	if p.async == nil {
		panic(misuse(ErrPortUnbound, "SendAsync on unbound port %s", p))
	}
	p.async.v.Store(uint32(s))
}

// RecvAsync consumes a pending asynchronous signal on the port's stream;
// ok is false when none is pending.
func (p *Port) RecvAsync() (Signal, bool) {
	if p.async == nil {
		return SigNone, false
	}
	s := Signal(p.async.v.Swap(uint32(SigNone)))
	return s, s != SigNone
}

// PeekAsync returns a pending asynchronous signal without consuming it.
func (p *Port) PeekAsync() Signal {
	if p.async == nil {
		return SigNone
	}
	return Signal(p.async.v.Load())
}

// exception is the map-global error latch behind KernelBase.Raise.
type exception struct {
	mu    sync.Mutex
	err   error
	abort func()
	once  sync.Once
}

// Raise delivers a global exception from inside a kernel: the first raised
// error is recorded, every stream in the application is force-closed so
// all kernels unblock and stop, and Map.Exe returns the error. Raise is
// safe to call from any kernel goroutine; subsequent raises are ignored.
func (k *KernelBase) Raise(err error) {
	if err == nil || k.m == nil {
		return
	}
	exc := &k.m.exc
	exc.mu.Lock()
	if exc.err == nil {
		exc.err = fmt.Errorf("raft: kernel %q raised: %w", k.Name(), err)
	}
	abort := exc.abort
	exc.mu.Unlock()
	if abort != nil {
		exc.once.Do(abort)
	}
}

// raisedError returns the recorded exception, if any.
func (m *Map) raisedError() error {
	m.exc.mu.Lock()
	defer m.exc.mu.Unlock()
	return m.exc.err
}

// setAbort installs the teardown used when a kernel raises.
func (m *Map) setAbort(abort func()) {
	m.exc.mu.Lock()
	m.exc.abort = abort
	m.exc.mu.Unlock()
}
