package raft

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// postChunks POSTs newline-separated chunks for one tenant and returns
// the response status, Retry-After seconds (0 when absent) and latency.
func postChunks(t *testing.T, url, tenant string, chunks []string) (status int, retryAfter int, latency time.Duration) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/ingest/ingest", strings.NewReader(strings.Join(chunks, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Raft-Tenant", tenant)
	begin := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	latency = time.Since(begin)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		retryAfter, _ = strconv.Atoi(ra)
	}
	return resp.StatusCode, retryAfter, latency
}

// TestGatewayEndToEnd drives a shared text-search pipeline through the
// ingestion gateway with two tenants: a flooding one that the admission
// model must shed (429 + positive Retry-After before the queue saturates)
// and a steady one whose request latency must stay bounded — the
// isolation property the gateway exists for. Every admitted chunk
// contains the needle exactly once, so the pipeline's final count equals
// the gateway's admitted-element total: exactly-once for admitted
// batches, shed batches contribute nothing.
func TestGatewayEndToEnd(t *testing.T) {
	gw, err := NewGateway(GatewayConfig{
		Tenants: map[string]GatewayQuota{
			"steady": {Rate: 50000, Burst: 1000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource[[]byte]("ingest")
	if err := BindSource(gw, src, func(p []byte) ([][]byte, error) {
		if len(p) == 0 {
			return nil, fmt.Errorf("empty payload")
		}
		return bytes.Split(p, []byte("\n")), nil
	}); err != nil {
		t.Fatal(err)
	}

	// match: ~100µs of work per chunk bounds the service rate, so a
	// flooding producer must outrun the pipeline.
	match := NewLambdaIO[[]byte, int](1, 1, func(k *LambdaKernel) Status {
		chunk, err := Pop[[]byte](k.In("0"))
		if err != nil {
			return Stop
		}
		time.Sleep(100 * time.Microsecond)
		if err := Push(k.Out("0"), bytes.Count(chunk, []byte("needle"))); err != nil {
			return Stop
		}
		return Proceed
	})
	match.SetName("match")
	var total atomic.Int64
	sink := NewLambdaIO[int, int](1, 0, func(k *LambdaKernel) Status {
		n, err := Pop[int](k.In("0"))
		if err != nil {
			return Stop
		}
		total.Add(int64(n))
		return Proceed
	})
	sink.SetName("sink")

	m := NewMap()
	// A small bounded intake queue makes the occupancy shed rule bite
	// quickly under flood.
	if _, err := m.Link(src, match, Cap(16), MaxCap(16)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(match, sink); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		defer close(done)
		rep, runErr = m.Exe(WithGateway(gw), WithDynamicResize(false))
	}()

	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	// Wait for Exe to wire the source (503 until then).
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _, _ := postChunks(t, ts.URL, "warmup", []string{"warmup needle chunk"})
		if status == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("source never wired (last status %d)", status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Flood tenant: large batches back-to-back. The pipeline drains
	// ~10k chunks/s, the flood offers far more, so the model must shed.
	floodDone := make(chan struct{})
	var floodSheds, floodRetryOK atomic.Int64
	go func() {
		defer close(floodDone)
		chunks := make([]string, 50)
		for i := range chunks {
			chunks[i] = "the needle in row " + strconv.Itoa(i)
		}
		stop := time.Now().Add(250 * time.Millisecond)
		for time.Now().Before(stop) {
			status, retry, _ := postChunks(t, ts.URL, "flood", chunks)
			if status == http.StatusTooManyRequests {
				floodSheds.Add(1)
				if retry > 0 {
					floodRetryOK.Add(1)
				}
			}
		}
	}()

	// Steady tenant: small paced batches; record latencies.
	var latencies []time.Duration
	steadyAdmitted := 0
	for i := 0; i < 25; i++ {
		status, _, lat := postChunks(t, ts.URL, "steady", []string{
			"steady needle a" + strconv.Itoa(i), "steady needle b" + strconv.Itoa(i),
		})
		latencies = append(latencies, lat)
		if status == http.StatusAccepted {
			steadyAdmitted++
		}
		time.Sleep(5 * time.Millisecond)
	}
	<-floodDone

	// Graceful shutdown: EOF the intake, let the pipeline drain.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sources/ingest/close", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("close intake: %v / %v", err, resp)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Exe did not complete after intake close")
	}
	if runErr != nil {
		t.Fatalf("Exe: %v", runErr)
	}

	// (b) the flood was shed with a usable Retry-After.
	if floodSheds.Load() == 0 {
		t.Fatal("flood tenant was never shed")
	}
	if floodRetryOK.Load() != floodSheds.Load() {
		t.Fatalf("%d/%d sheds carried a positive Retry-After",
			floodRetryOK.Load(), floodSheds.Load())
	}

	// (a) the steady tenant's latency stayed bounded: shedding answers
	// fast instead of parking requests behind the flood's backlog.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	if p99 > 500*time.Millisecond {
		t.Fatalf("steady tenant p99 = %v, want bounded under flood", p99)
	}
	if steadyAdmitted == 0 {
		t.Fatal("steady tenant never admitted")
	}

	// (c) exactly-once for admitted batches: every admitted chunk holds
	// the needle exactly once, so the pipeline count must equal the
	// gateway's admitted-element total — nothing lost, nothing duplicated,
	// shed batches invisible.
	if rep.Gateway == nil {
		t.Fatal("report carries no gateway section")
	}
	var admitted uint64
	for _, tn := range rep.Gateway.Tenants {
		admitted += tn.AdmittedElems
	}
	if got := uint64(total.Load()); got != admitted {
		t.Fatalf("pipeline counted %d needles, gateway admitted %d elements", got, admitted)
	}
	if len(rep.Gateway.Sources) != 1 || rep.Gateway.Sources[0].AdmittedElems != admitted {
		t.Fatalf("source stats = %+v, want %d admitted", rep.Gateway.Sources, admitted)
	}
}

// TestGatewaySourceAbort checks that a Source kernel stops (and pending
// injects fail instead of hanging) when its downstream closes the stream.
func TestGatewaySourceAbort(t *testing.T) {
	src := NewSource[int]("nums")
	// One-pop consumer: reads a single element then stops, closing the
	// stream from the consumer side.
	sink := NewLambdaIO[int, int](1, 0, func(k *LambdaKernel) Status {
		if _, err := Pop[int](k.In("0")); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("pop: %v", err)
		}
		return Stop
	})
	m := NewMap()
	if _, err := m.Link(src, sink, Cap(4)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Exe()
	}()
	// First inject is consumed; subsequent ones must fail once the stream
	// closes rather than blocking forever.
	if err := src.inject("", []int{1}, false); err != nil {
		t.Fatalf("first inject: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := src.inject("", []int{2}, false); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("inject kept succeeding after downstream stopped")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Exe hung after downstream abort")
	}
}

// TestGatewayPooledIngest drives batches through BindSourceAppend and
// verifies the recycle path: decode buffers are leased from the source's
// pool, committed into ring storage through a write view, and recycled —
// one saved intermediate copy per admitted batch, surfaced in the report
// and in /v1/stats.
func TestGatewayPooledIngest(t *testing.T) {
	gw, err := NewGateway(GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource[int64]("ingest")
	if err := BindSourceAppend(gw, src, func(p []byte, buf []int64) ([]int64, error) {
		for _, f := range strings.Fields(string(p)) {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, err
			}
			buf = append(buf, v)
		}
		return buf, nil
	}); err != nil {
		t.Fatal(err)
	}
	var total atomic.Int64
	sink := NewLambdaIO[int64, int64](1, 0, func(k *LambdaKernel) Status {
		v, err := Pop[int64](k.In("0"))
		if err != nil {
			return Stop
		}
		total.Add(v)
		return Proceed
	})
	sink.SetName("sum")
	m := NewMap()
	if _, err := m.Link(src, sink, Cap(64)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		defer close(done)
		rep, runErr = m.Exe(WithGateway(gw), WithDynamicResize(false))
	}()
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	// Warm up until wired; value 0 keeps the sum unaffected.
	warmupAdmitted := 0
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _, _ := postChunks(t, ts.URL, "", []string{"0"})
		if status == http.StatusAccepted {
			warmupAdmitted++
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("source never wired (last status %d)", status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	const batches = 50
	for i := 0; i < batches; i++ {
		status, _, _ := postChunks(t, ts.URL, "", []string{"1 2 3"})
		if status != http.StatusAccepted {
			t.Fatalf("batch %d: status %d, want 202", i, status)
		}
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sources/ingest/close", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("close intake: %v / %v", err, resp)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Exe did not complete after intake close")
	}
	if runErr != nil {
		t.Fatalf("Exe: %v", runErr)
	}
	if got := total.Load(); got != batches*6 {
		t.Fatalf("sink summed %d, want %d", got, batches*6)
	}
	if rep.Gateway == nil || len(rep.Gateway.Sources) != 1 {
		t.Fatalf("report gateway sources = %+v", rep.Gateway)
	}
	want := uint64(batches + warmupAdmitted)
	if got := rep.Gateway.Sources[0].CopiesSaved; got != want {
		t.Fatalf("CopiesSaved = %d, want %d (every admitted batch on the pooled view path)", got, want)
	}
}
