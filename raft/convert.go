package raft

import (
	"fmt"
	"reflect"
)

// This file implements the paper's §4.2 link type conversion: "the
// run-time selects the narrowest convertible type for each link type and
// casts the types at each endpoint."
//
// A Link whose endpoint element types differ normally fails type checking.
// With the AllowConvert option, numerically convertible endpoints are
// joined through an auto-inserted cast kernel. The narrowest-type rule is
// honored by placement: the cast sits on the wide side, so the stream
// buffer that carries the configured capacity holds the narrower
// representation (fewer bytes buffered, more cache-able data — the paper's
// motivation).

// AllowConvert permits linking ports whose element types differ but are
// numerically convertible; the runtime inserts a cast kernel.
func AllowConvert() LinkOption { return func(s *linkSpec) { s.convert = true } }

// Converter casts a stream from element type A to element type B,
// preserving synchronized signals. The runtime inserts converters
// automatically for AllowConvert links; NewConverter is exported for
// manual topologies.
type Converter[A, B Number] struct {
	KernelBase
}

// Number is the constraint for convertible link endpoint types.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// NewConverter returns a cast kernel with input port "in" (type A) and
// output port "out" (type B).
func NewConverter[A, B Number]() *Converter[A, B] {
	k := &Converter[A, B]{}
	k.SetName("convert")
	AddInput[A](k, "in")
	AddOutput[B](k, "out")
	return k
}

// Run implements Kernel.
func (c *Converter[A, B]) Run() Status {
	v, sig, err := PopSig[A](c.In("in"))
	if err != nil {
		return Stop
	}
	if err := PushSig(c.Out("out"), B(v), sig); err != nil {
		return Stop
	}
	return Proceed
}

// Clone implements Cloner.
func (c *Converter[A, B]) Clone() Kernel { return NewConverter[A, B]() }

// converterFactories maps (from, to) element types to cast-kernel
// constructors, populated for every numeric type pair at init.
var converterFactories = map[[2]reflect.Type]func() Kernel{}

func registerConverter[A, B Number]() {
	key := [2]reflect.Type{
		reflect.TypeOf((*A)(nil)).Elem(),
		reflect.TypeOf((*B)(nil)).Elem(),
	}
	converterFactories[key] = func() Kernel { return NewConverter[A, B]() }
}

// registerConverterRow registers casts from A to every numeric type.
func registerConverterRow[A Number]() {
	registerConverter[A, int]()
	registerConverter[A, int8]()
	registerConverter[A, int16]()
	registerConverter[A, int32]()
	registerConverter[A, int64]()
	registerConverter[A, uint]()
	registerConverter[A, uint8]()
	registerConverter[A, uint16]()
	registerConverter[A, uint32]()
	registerConverter[A, uint64]()
	registerConverter[A, float32]()
	registerConverter[A, float64]()
}

func init() {
	registerConverterRow[int]()
	registerConverterRow[int8]()
	registerConverterRow[int16]()
	registerConverterRow[int32]()
	registerConverterRow[int64]()
	registerConverterRow[uint]()
	registerConverterRow[uint8]()
	registerConverterRow[uint16]()
	registerConverterRow[uint32]()
	registerConverterRow[uint64]()
	registerConverterRow[float32]()
	registerConverterRow[float64]()
}

// newConverterFor returns a cast kernel for the given endpoint types, or
// an error when no conversion exists.
func newConverterFor(from, to reflect.Type) (Kernel, error) {
	mk, ok := converterFactories[[2]reflect.Type{from, to}]
	if !ok {
		return nil, fmt.Errorf("raft: no conversion from %s to %s", from, to)
	}
	return mk(), nil
}

// convertedLink joins two ports of different numeric types through a cast
// kernel, honoring the narrowest-type placement rule. It returns a
// synthetic Link carrying the caller's original endpoints for chaining.
func (m *Map) convertedLink(src, dst Kernel, sp, dp *Port, spec linkSpec) (*Link, error) {
	conv, err := newConverterFor(sp.elem, dp.elem)
	if err != nil {
		return nil, err
	}
	// The configured capacity goes to the queue carrying the narrower
	// type; the other side gets a small default buffer.
	wideOpts := []LinkOption{}
	narrowOpts := []LinkOption{Cap(spec.capacity), MaxCap(spec.maxCap)}
	srcSideOpts, dstSideOpts := narrowOpts, wideOpts
	if sp.elem.Size() > dp.elem.Size() {
		srcSideOpts, dstSideOpts = wideOpts, narrowOpts
	}
	srcSideOpts = append(srcSideOpts, From(sp.name), To("in"))
	dstSideOpts = append(dstSideOpts, From("out"), To(dp.name))
	if spec.outOfOrder {
		srcSideOpts = append(srcSideOpts, AsOutOfOrder())
	}
	if spec.lowLatency {
		srcSideOpts = append(srcSideOpts, AsLowLatency())
		dstSideOpts = append(dstSideOpts, AsLowLatency())
	}
	if spec.lockFree {
		srcSideOpts = append(srcSideOpts, AsLockFree())
		dstSideOpts = append(dstSideOpts, AsLockFree())
	}
	if spec.bestEffort {
		srcSideOpts = append(srcSideOpts, AsBestEffort())
		dstSideOpts = append(dstSideOpts, AsBestEffort())
	}
	if _, err := m.Link(src, conv, srcSideOpts...); err != nil {
		return nil, err
	}
	if _, err := m.Link(conv, dst, dstSideOpts...); err != nil {
		return nil, err
	}
	return &Link{
		Src: src, Dst: dst, SrcPort: sp, DstPort: dp,
		capacity: spec.capacity, maxCap: spec.maxCap,
		outOfOrder: spec.outOfOrder, reorderable: spec.reorderable,
		lowLatency: spec.lowLatency, lockFree: spec.lockFree,
		bestEffort: spec.bestEffort,
	}, nil
}
