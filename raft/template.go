package raft

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"raftlib/internal/gateway"
	"raftlib/internal/resilience"
)

// SubgraphTemplate is a parameterized subgraph instantiated per key at
// runtime: the gateway's resolver (or an explicit Rewriter.Instantiate)
// materializes one instance per key through the graph-rewrite protocol,
// so per-tenant pipelines appear on first traffic instead of being built
// up front for every possible tenant.
type SubgraphTemplate struct {
	// Name identifies the template; it doubles as the {source} segment of
	// the gateway ingest URL that triggers instantiation. Instance
	// bindings and kernels are namespaced "Name@key/...".
	Name string
	// Build stages one instance for key on the builder: declare the
	// instance's kernels and links, and (optionally) its gateway intake
	// with BindInstanceSource. Build must only add structure.
	Build func(b *InstanceBuilder, key string) error
	// Idle, when positive, is the scale-to-zero timeout: an instance whose
	// streams move no elements for this long is reaped — its intake closes,
	// Checkpointable kernels snapshot into the execution's checkpoint
	// store, and the instance's kernels and links are removed from the
	// running graph. A later instantiation of the same key restores the
	// snapshots, resuming where the reaped instance left off.
	Idle time.Duration
}

// InstanceBuilder stages one template instance inside a rewrite
// transaction. It is only valid during the template's Build call.
type InstanceBuilder struct {
	tx      *Tx
	binding string
	key     string

	links []*Link

	// Gateway intake staged by BindInstanceSource.
	gwRegister func(gw *gateway.Server, bindingName string) error
	gwClose    func()
	gwSrc      Kernel
}

// Key returns the instantiation key (the tenant, under gateway-driven
// instantiation).
func (b *InstanceBuilder) Key() string { return b.key }

// Link stages a stream between two instance kernels; options mirror
// Map.Link.
func (b *InstanceBuilder) Link(src, dst Kernel, opts ...LinkOption) (*Link, error) {
	l, err := b.tx.Link(src, dst, opts...)
	if err != nil {
		return nil, err
	}
	b.links = append(b.links, l)
	return l, nil
}

// MustLink is Link that panics on error, for template bodies where a
// linking mistake is a programming bug.
func (b *InstanceBuilder) MustLink(src, dst Kernel, opts ...LinkOption) *Link {
	l, err := b.Link(src, dst, opts...)
	if err != nil {
		panic(err)
	}
	return l
}

// BindInstanceSource declares src as the instance's gateway intake: once
// the instance commits, the execution's gateway serves the template's
// ingest URL for this key through it (binding name "template@key"). dec
// parses one request payload into an element batch, as in BindSource.
func BindInstanceSource[T any](b *InstanceBuilder, src *Source[T], dec func(payload []byte) ([]T, error)) {
	b.gwSrc = src
	b.gwClose = src.CloseIntake
	b.gwRegister = func(gw *gateway.Server, bindingName string) error {
		return gw.Register(gateway.Binding{
			Name: bindingName,
			Decode: func(payload []byte) (any, int, error) {
				vals, err := dec(payload)
				if err != nil {
					return nil, 0, err
				}
				return vals, len(vals), nil
			},
			Push: func(batch any) error {
				return src.inject("", batch.([]T), false)
			},
			PushTenant: func(tenant string, batch any) error {
				return src.inject(tenant, batch.([]T), false)
			},
			CloseIntake: src.CloseIntake,
			CopiesSaved: src.CopiesSaved,
		})
	}
}

// templateInstance is one live (or building) instance.
type templateInstance struct {
	def     *SubgraphTemplate
	key     string
	binding string

	// ready is closed once instantiation finished (err says how); reaping
	// and resolve wait on it so traffic arriving mid-instantiation blocks
	// instead of failing.
	ready chan struct{}
	err   error

	kernels []Kernel
	links   []*linkEntry
	gwClose func()
	hasGw   bool

	// Idle detection: lastMoved is the last activity sum sampled from the
	// instance's link telemetry; lastSeen the time it last changed.
	lastMoved uint64
	lastSeen  time.Time
	reaping   bool
}

// templateSet is one execution's template registry and instance book.
type templateSet struct {
	ex *Execution

	mu     sync.Mutex
	defs   map[string]*SubgraphTemplate
	insts  map[string]*templateInstance // keyed by binding "name@key"
	reaper bool
}

func newTemplateSet(ex *Execution) *templateSet {
	return &templateSet{
		ex:    ex,
		defs:  map[string]*SubgraphTemplate{},
		insts: map[string]*templateInstance{},
	}
}

// RegisterTemplate adds a template to the running execution. Instances
// are created on first gateway traffic naming the template as source, or
// explicitly with Instantiate.
func (r *Rewriter) RegisterTemplate(t *SubgraphTemplate) error {
	if t == nil || t.Name == "" || t.Build == nil {
		return errors.New("raft: SubgraphTemplate needs Name and Build")
	}
	ts := r.ex.tmpl
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, dup := ts.defs[t.Name]; dup {
		return fmt.Errorf("raft: template %q already registered", t.Name)
	}
	ts.defs[t.Name] = t
	if t.Idle > 0 && !ts.reaper {
		ts.reaper = true
		go ts.reapLoop()
	}
	return nil
}

// Instantiate materializes (or finds) the template's instance for key,
// splicing it into the running graph. Idempotent per (name, key).
func (r *Rewriter) Instantiate(name, key string) error {
	ts := r.ex.tmpl
	ts.mu.Lock()
	def := ts.defs[name]
	ts.mu.Unlock()
	if def == nil {
		return fmt.Errorf("raft: unknown template %q", name)
	}
	_, err := ts.instantiate(def, key)
	return err
}

// Reap removes the template's instance for key now, regardless of idle
// state: intake closes, Checkpointable kernels snapshot, structure leaves
// the graph.
func (r *Rewriter) Reap(name, key string) error {
	ts := r.ex.tmpl
	ts.mu.Lock()
	inst := ts.insts[instanceBinding(name, key)]
	if inst != nil && !inst.reaping {
		inst.reaping = true
	} else if inst != nil {
		inst = nil // another reap owns it
	}
	ts.mu.Unlock()
	if inst == nil {
		return fmt.Errorf("raft: no live instance %q", instanceBinding(name, key))
	}
	<-inst.ready
	if inst.err != nil {
		return inst.err
	}
	return ts.reap(inst)
}

func instanceBinding(name, key string) string {
	if key == "" {
		key = "default"
	}
	return name + "@" + key
}

// resolve is the gateway's unknown-source hook: traffic for a registered
// template materializes the (source=template, key=tenant) instance and is
// then served by its per-tenant binding.
func (ts *templateSet) resolve(source, tenant string) (string, bool) {
	ts.mu.Lock()
	def := ts.defs[source]
	ts.mu.Unlock()
	if def == nil {
		return "", false
	}
	inst, err := ts.instantiate(def, tenant)
	if err != nil {
		return "", false
	}
	return inst.binding, inst.hasGw
}

// instantiate finds or builds the instance for (def, key). The first
// caller builds; concurrent callers (gateway requests racing the build)
// block on ready and share the outcome.
func (ts *templateSet) instantiate(def *SubgraphTemplate, key string) (*templateInstance, error) {
	binding := instanceBinding(def.Name, key)
	ts.mu.Lock()
	if inst, ok := ts.insts[binding]; ok {
		ts.mu.Unlock()
		<-inst.ready
		return inst, inst.err
	}
	inst := &templateInstance{
		def: def, key: key, binding: binding,
		ready: make(chan struct{}),
	}
	ts.insts[binding] = inst
	ts.mu.Unlock()

	inst.err = ts.build(inst)
	inst.lastSeen = time.Now()
	close(inst.ready)
	if inst.err != nil {
		ts.mu.Lock()
		delete(ts.insts, binding)
		ts.mu.Unlock()
		return inst, inst.err
	}
	return inst, nil
}

// build runs the template body in a rewrite transaction and commits it,
// then registers and wires the instance's gateway binding.
func (ts *templateSet) build(inst *templateInstance) error {
	ex := ts.ex
	tx := ex.rw.Begin()
	b := &InstanceBuilder{tx: tx, binding: inst.binding, key: inst.key}
	if err := inst.def.Build(b, inst.key); err != nil {
		return fmt.Errorf("raft: template %q build: %w", inst.def.Name, err)
	}
	if len(tx.rmKernels) != 0 || len(tx.rmLinks) != 0 {
		return fmt.Errorf("raft: template %q build must only add structure", inst.def.Name)
	}
	if len(tx.addKernels) == 0 {
		return fmt.Errorf("raft: template %q build staged no kernels", inst.def.Name)
	}

	// Namespace the instance's kernels under the binding, so two tenants'
	// instances coexist and checkpoint keys are stable across reap cycles.
	used := map[string]int{}
	for _, k := range tx.addKernels {
		kb := k.kernelBase()
		name := inst.binding + "/" + kernelName(k)
		if n := used[name]; n > 0 {
			name = fmt.Sprintf("%s#%d", name, n)
		}
		used[inst.binding+"/"+kernelName(k)]++
		kb.SetName(name)
	}

	// Re-instantiation after a reap resumes from the reaped instance's
	// snapshots. Supervised runs restore in the actor's Init wrap (see
	// wireActorResilience); unsupervised ones restore here.
	if !ex.cfg.Supervised && ex.cfg.resStore != nil {
		for _, k := range tx.addKernels {
			ck, ok := k.(Checkpointable)
			if !ok {
				continue
			}
			if snap, found, err := ex.cfg.resStore.Load(k.kernelBase().Name()); err == nil && found {
				if err := ck.Restore(snap); err != nil {
					return fmt.Errorf("raft: template %q restore %q: %w", inst.def.Name, k.kernelBase().Name(), err)
				}
			}
		}
	}

	inst.kernels = append(inst.kernels, tx.addKernels...)
	if err := tx.Commit(); err != nil {
		return err
	}
	for _, l := range b.links {
		if le := ex.reg.liveLink(l); le != nil {
			inst.links = append(inst.links, le)
		}
	}

	// Gateway intake: registered only after the instance is live, so an
	// admitted batch always has a running pipeline under it.
	if b.gwRegister != nil && ex.cfg.Gateway != nil {
		gw := ex.cfg.Gateway
		if err := b.gwRegister(gw, inst.binding); err != nil {
			return err
		}
		var srcLink *linkEntry
		for _, le := range inst.links {
			if le.l.Src == b.gwSrc {
				srcLink = le
				break
			}
		}
		if srcLink == nil {
			return fmt.Errorf("raft: template %q intake source has no instance link", inst.def.Name)
		}
		li := srcLink.li
		tel := li.Queue.Telemetry()
		w := gateway.Wiring{
			Queue:      func() (int, int) { return li.Queue.Len(), li.Queue.Cap() },
			Dropped:    tel.Drops,
			Servers:    func() int { return 1 },
			BestEffort: li.BestEffort,
		}
		if err := gw.Wire(inst.binding, w); err != nil {
			return err
		}
		inst.gwClose = b.gwClose
		inst.hasGw = true
	}
	return nil
}

// activity sums the instance's link push counters — the idle signal, read
// from telemetry the streams already keep (no hot-path hook).
func (inst *templateInstance) activity() uint64 {
	var sum uint64
	for _, le := range inst.links {
		sum += le.li.Queue.Telemetry().Snapshot().Pushes
	}
	return sum
}

// reapLoop samples instance activity and reaps instances idle past their
// template's timeout. One loop per execution, started with the first
// Idle-bearing template.
func (ts *templateSet) reapLoop() {
	tick := time.NewTicker(ts.reapPeriod())
	defer tick.Stop()
	for {
		select {
		case <-ts.ex.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		var due []*templateInstance
		ts.mu.Lock()
		for _, inst := range ts.insts {
			if inst.reaping || inst.def.Idle <= 0 {
				continue
			}
			select {
			case <-inst.ready:
			default:
				continue // still building
			}
			if inst.err != nil {
				continue
			}
			if moved := inst.activity(); moved != inst.lastMoved {
				inst.lastMoved, inst.lastSeen = moved, now
				continue
			}
			if now.Sub(inst.lastSeen) >= inst.def.Idle {
				inst.reaping = true
				due = append(due, inst)
			}
		}
		ts.mu.Unlock()
		for _, inst := range due {
			ts.reap(inst)
		}
	}
}

// reapPeriod picks the activity sampling period from the registered
// templates' idle timeouts.
func (ts *templateSet) reapPeriod() time.Duration {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	min := time.Second
	for _, def := range ts.defs {
		if def.Idle > 0 && def.Idle/4 < min {
			min = def.Idle / 4
		}
	}
	if min < 10*time.Millisecond {
		min = 10 * time.Millisecond
	}
	return min
}

// reap scales one instance to zero: the gateway binding leaves (in-flight
// requests settle through the closing intake), the instance drains and is
// removed from the graph, and Checkpointable kernels snapshot their final
// state so a future instantiation of the key resumes.
func (ts *templateSet) reap(inst *templateInstance) error {
	ex := ts.ex
	if inst.hasGw && ex.cfg.Gateway != nil {
		ex.cfg.Gateway.Unregister(inst.binding)
	}
	if inst.gwClose != nil {
		inst.gwClose()
	}

	// Removal transaction: the commit waits for the instance's kernels to
	// drain and stop, so the snapshots below capture settled state.
	tx := ex.rw.Begin()
	for _, le := range inst.links {
		if err := tx.RemoveLink(le.l); err != nil {
			return err
		}
	}
	for _, k := range inst.kernels {
		if err := tx.RemoveKernel(k); err != nil {
			return err
		}
	}
	err := tx.Commit()

	ts.mu.Lock()
	store := ex.cfg.resStore
	if store == nil {
		// Reap-time snapshots need a store even in unsupervised runs; the
		// in-memory default keeps resume working within this execution.
		store = resilience.NewMemStore()
		ex.cfg.resStore = store
	}
	ts.mu.Unlock()
	for _, k := range inst.kernels {
		ck, ok := k.(Checkpointable)
		if !ok {
			continue
		}
		snap, serr := ck.Snapshot()
		if serr != nil {
			if err == nil {
				err = fmt.Errorf("raft: reap snapshot %q: %w", k.kernelBase().Name(), serr)
			}
			continue
		}
		if werr := store.Save(k.kernelBase().Name(), snap); werr != nil && err == nil {
			err = werr
		}
	}

	ts.mu.Lock()
	delete(ts.insts, inst.binding)
	ts.mu.Unlock()
	return err
}
