package raft

import (
	"fmt"
	"sync"
	"testing"

	"raftlib/internal/mapper"
)

// genKernel streams the integers [0, n) out of port "out".
type genKernel struct {
	KernelBase
	next, n int64
}

func newGen(n int64) *genKernel {
	k := &genKernel{n: n}
	AddOutput[int64](k, "out")
	return k
}

func (g *genKernel) Run() Status {
	if g.next >= g.n {
		return Stop
	}
	sig := SigNone
	if g.next == g.n-1 {
		sig = SigEOF
	}
	if err := PushSig(g.Out("out"), g.next, sig); err != nil {
		return Stop
	}
	g.next++
	return Proceed
}

// sumKernel is the paper's Fig. 2 kernel: c = a + b.
type sumKernel struct {
	KernelBase
}

func newSum() *sumKernel {
	k := &sumKernel{}
	AddInput[int64](k, "input_a")
	AddInput[int64](k, "input_b")
	AddOutput[int64](k, "sum")
	return k
}

func (s *sumKernel) Run() Status {
	a, err := Pop[int64](s.In("input_a"))
	if err != nil {
		return Stop
	}
	b, err := Pop[int64](s.In("input_b"))
	if err != nil {
		return Stop
	}
	if err := Push(s.Out("sum"), a+b); err != nil {
		return Stop
	}
	return Proceed
}

// collectKernel gathers everything from port "in".
type collectKernel struct {
	KernelBase
	mu  sync.Mutex
	got []int64
}

func newCollect() *collectKernel {
	k := &collectKernel{}
	AddInput[int64](k, "in")
	return k
}

func (c *collectKernel) Run() Status {
	v, err := Pop[int64](c.In("in"))
	if err != nil {
		return Stop
	}
	c.mu.Lock()
	c.got = append(c.got, v)
	c.mu.Unlock()
	return Proceed
}

func (c *collectKernel) values() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int64(nil), c.got...)
}

// workKernel doubles each element; cloneable for replication tests.
type workKernel struct {
	KernelBase
}

func newWork() *workKernel {
	k := &workKernel{}
	AddInput[int64](k, "in")
	AddOutput[int64](k, "out")
	return k
}

func (w *workKernel) Run() Status {
	v, err := Pop[int64](w.In("in"))
	if err != nil {
		return Stop
	}
	if err := Push(w.Out("out"), 2*v); err != nil {
		return Stop
	}
	return Proceed
}

func (w *workKernel) Clone() Kernel { return newWork() }

func runSumApp(t *testing.T, n int64, opts ...Option) (*collectKernel, *Report) {
	t.Helper()
	m := NewMap()
	sum := newSum()
	sink := newCollect()
	if _, err := m.Link(newGen(n), sum, To("input_a")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(newGen(n), sum, To("input_b")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(sum, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(opts...)
	if err != nil {
		t.Fatalf("Exe: %v", err)
	}
	return sink, rep
}

func TestSumApplication(t *testing.T) {
	const n = 10_000
	sink, rep := runSumApp(t, n)
	got := sink.values()
	if len(got) != n {
		t.Fatalf("received %d sums, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int64(2*i) {
			t.Fatalf("sum[%d] = %d, want %d", i, v, 2*i)
		}
	}
	if rep.Elapsed <= 0 {
		t.Fatal("report has no elapsed time")
	}
	if len(rep.Kernels) != 4 || len(rep.Links) != 3 {
		t.Fatalf("report: %d kernels, %d links; want 4, 3", len(rep.Kernels), len(rep.Links))
	}
}

func TestSumApplicationPoolScheduler(t *testing.T) {
	// Pool with enough workers that blocked kernels cannot starve the rest.
	sink, rep := runSumApp(t, 5_000, WithPoolScheduler(4))
	if len(sink.values()) != 5_000 {
		t.Fatalf("received %d sums, want 5000", len(sink.values()))
	}
	if rep.Scheduler != "pool-4" {
		t.Fatalf("scheduler = %q", rep.Scheduler)
	}
}

func TestSumApplicationLockFreeQueues(t *testing.T) {
	sink, _ := runSumApp(t, 5_000, WithLockFreeQueues())
	if len(sink.values()) != 5_000 {
		t.Fatalf("received %d sums, want 5000", len(sink.values()))
	}
}

func TestSumApplicationWithoutMonitor(t *testing.T) {
	sink, rep := runSumApp(t, 2_000, WithoutMonitor())
	if len(sink.values()) != 2_000 {
		t.Fatalf("received %d sums", len(sink.values()))
	}
	if rep.MonitorTicks != 0 {
		t.Fatalf("monitor ran %d ticks with WithoutMonitor", rep.MonitorTicks)
	}
}

func TestSmallQueuesForceDynamicResize(t *testing.T) {
	m := NewMap()
	sink := newCollect()
	work := newWork()
	if _, err := m.Link(newGen(20_000), work, Cap(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink, Cap(1)); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithDynamicResize(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.values()) != 20_000 {
		t.Fatalf("received %d", len(sink.values()))
	}
	var grows uint64
	for _, l := range rep.Links {
		grows += l.Grows
	}
	if grows == 0 {
		t.Fatal("expected the monitor to grow a 1-element queue under load")
	}
}

func TestAutoReplication(t *testing.T) {
	const n = 50_000
	m := NewMap()
	work := newWork()
	sink := newCollect()
	if _, err := m.Link(newGen(n), work, AsOutOfOrder()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithAutoReplicate(4))
	if err != nil {
		t.Fatal(err)
	}
	got := sink.values()
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	// Out-of-order is allowed; verify multiset instead of order.
	seen := make(map[int64]int, n)
	for _, v := range got {
		seen[v]++
	}
	for i := int64(0); i < n; i++ {
		if seen[2*i] != 1 {
			t.Fatalf("value %d appeared %d times", 2*i, seen[2*i])
		}
	}
	if len(rep.Groups) != 1 || rep.Groups[0].MaxReplicas != 4 {
		t.Fatalf("groups = %+v", rep.Groups)
	}
	// 1 source + split + 4 replicas + merge + sink = 8 kernels.
	if len(rep.Kernels) != 8 {
		t.Fatalf("kernel count = %d, want 8", len(rep.Kernels))
	}
	// All replicas should have done some work at full static width.
	replicaRuns := 0
	for _, k := range rep.Kernels {
		if k.Name == "workKernel#1" || k.Name == "workKernel#1[1]" ||
			k.Name == "workKernel#1[2]" || k.Name == "workKernel#1[3]" {
			if k.Runs > 0 {
				replicaRuns++
			}
		}
	}
	if replicaRuns < 2 {
		t.Fatalf("only %d replicas ran; expected parallel execution", replicaRuns)
	}
}

func TestAutoReplicationLeastUtilized(t *testing.T) {
	const n = 20_000
	m := NewMap()
	work := newWork()
	sink := newCollect()
	if _, err := m.Link(newGen(n), work, AsOutOfOrder()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(WithAutoReplicate(3), WithSplitPolicy(LeastUtilized)); err != nil {
		t.Fatal(err)
	}
	if len(sink.values()) != n {
		t.Fatalf("received %d, want %d", len(sink.values()), n)
	}
}

func TestAutoScaleStartsNarrowAndWidens(t *testing.T) {
	const n = 300_000
	m := NewMap()
	work := newWork()
	sink := newCollect()
	if _, err := m.Link(newGen(n), work, AsOutOfOrder(), Cap(8), MaxCap(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithAutoReplicate(4), WithAutoScale(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.values()) != n {
		t.Fatalf("received %d, want %d", len(sink.values()), n)
	}
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %+v", rep.Groups)
	}
	// The group starts at 1; under a full 8-slot input queue the monitor
	// should have widened it at least once.
	if rep.Groups[0].ActiveAtEnd < 2 {
		t.Logf("monitor events: %+v", rep.MonitorEvents)
		t.Fatalf("active replicas at end = %d; expected the monitor to scale up", rep.Groups[0].ActiveAtEnd)
	}
}

func TestLinkErrors(t *testing.T) {
	m := NewMap()
	sum := newSum()
	if _, err := m.Link(newGen(1), sum); err == nil {
		t.Fatal("ambiguous destination port must error")
	}
	if _, err := m.Link(newGen(1), sum, To("nope")); err == nil {
		t.Fatal("unknown port must error")
	}
	if _, err := m.Link(nil, sum); err == nil {
		t.Fatal("nil kernel must error")
	}
	// Type mismatch.
	f := NewLambda[float64](0, 1, func(k *LambdaKernel) Status { return Stop })
	if _, err := m.Link(f, sum, To("input_a")); err == nil {
		t.Fatal("type mismatch must error")
	}
	// Double-binding a port.
	g1 := newGen(1)
	c1 := newCollect()
	if _, err := m.Link(g1, c1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(g1, newCollect()); err == nil {
		t.Fatal("relinking a bound port must error")
	}
}

func TestExeRejectsUnboundPorts(t *testing.T) {
	m := NewMap()
	sum := newSum() // input_b never linked
	sink := newCollect()
	if _, err := m.Link(newGen(10), sum, To("input_a")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(sum, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err == nil {
		t.Fatal("Exe must reject a topology with unbound ports")
	}
}

func TestExeRunsIndependentPipelines(t *testing.T) {
	// Two disjoint pipelines in one map are a legitimate program (e.g. the
	// producer half of a distributed app holds one pipeline per bridge).
	m := NewMap()
	c1, c2 := newCollect(), newCollect()
	if _, err := m.Link(newGen(10), c1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(newGen(20), c2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if len(c1.values()) != 10 || len(c2.values()) != 20 {
		t.Fatalf("pipelines received %d and %d values", len(c1.values()), len(c2.values()))
	}
}

func TestExeRejectsEmptyMap(t *testing.T) {
	if _, err := NewMap().Exe(); err == nil {
		t.Fatal("Exe on empty map must error")
	}
}

func TestKernelPanicIsReportedNotFatal(t *testing.T) {
	m := NewMap()
	bad := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
		panic("kernel bug")
	})
	if _, err := m.Link(newGen(100), bad); err != nil {
		t.Fatal(err)
	}
	sink := newCollect()
	if _, err := m.Link(bad, sink); err != nil {
		t.Fatal(err)
	}
	_, err := m.Exe()
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestLambdaKernels(t *testing.T) {
	const n = 1000
	m := NewMap()
	i := int64(0)
	src := NewLambda[int64](0, 1, func(k *LambdaKernel) Status {
		if i >= n {
			return Stop
		}
		if err := Push(k.Out("0"), i); err != nil {
			return Stop
		}
		i++
		return Proceed
	})
	sink := newCollect()
	if _, err := m.Link(src, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if got := sink.values(); len(got) != n || got[0] != 0 || got[n-1] != n-1 {
		t.Fatalf("lambda source produced %d values", len(got))
	}
}

func TestLambdaCloneableReplicates(t *testing.T) {
	const n = 10_000
	m := NewMap()
	worker := NewLambdaCloneable(func() *LambdaKernel {
		return NewLambda[int64](1, 1, func(k *LambdaKernel) Status {
			v, err := Pop[int64](k.In("0"))
			if err != nil {
				return Stop
			}
			if err := Push(k.Out("0"), v+1); err != nil {
				return Stop
			}
			return Proceed
		})
	})
	sink := newCollect()
	if _, err := m.Link(newGen(n), worker, AsOutOfOrder()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(worker, sink); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Exe(WithAutoReplicate(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.values()) != n {
		t.Fatalf("received %d, want %d", len(sink.values()), n)
	}
	if len(rep.Groups) != 1 {
		t.Fatalf("expected a replicated group, got %+v", rep.Groups)
	}
}

func TestKernelGroupSwapsToFaster(t *testing.T) {
	const n = 30_000
	mkMember := func(extra int, label string) Kernel {
		k := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
			v, err := Pop[int64](k.In("0"))
			if err != nil {
				return Stop
			}
			// The slow member burns extra cycles.
			s := int64(0)
			for j := 0; j < extra; j++ {
				s += int64(j)
			}
			if err := Push(k.Out("0"), v+s*0); err != nil {
				return Stop
			}
			return Proceed
		})
		k.SetName(label)
		return k
	}
	grp, err := NewKernelGroup(mkMember(20_000, "slow"), mkMember(0, "fast"))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMap()
	sink := newCollect()
	if _, err := m.Link(newGen(n), grp); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(grp, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if len(sink.values()) != n {
		t.Fatalf("received %d, want %d", len(sink.values()), n)
	}
	if grp.Active() != "fast" {
		t.Fatalf("group settled on %q, want fast (swaps=%d)", grp.Active(), grp.Swaps())
	}
}

func TestKernelGroupFixed(t *testing.T) {
	mk := func(label string) Kernel {
		k := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
			v, err := Pop[int64](k.In("0"))
			if err != nil {
				return Stop
			}
			if err := Push(k.Out("0"), v); err != nil {
				return Stop
			}
			return Proceed
		})
		k.SetName(label)
		return k
	}
	grp, err := NewKernelGroup(mk("a"), mk("b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := grp.SetFixed("b"); err != nil {
		t.Fatal(err)
	}
	if err := grp.SetFixed("zzz"); err == nil {
		t.Fatal("unknown member must error")
	}
	m := NewMap()
	sink := newCollect()
	if _, err := m.Link(newGen(500), grp); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(grp, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if grp.Active() != "b" || grp.Swaps() != 0 {
		t.Fatalf("fixed group moved: active=%q swaps=%d", grp.Active(), grp.Swaps())
	}
}

func TestKernelGroupSignatureMismatch(t *testing.T) {
	a := NewLambda[int64](1, 1, func(k *LambdaKernel) Status { return Stop })
	b := NewLambda[float64](1, 1, func(k *LambdaKernel) Status { return Stop })
	if _, err := NewKernelGroup(a, b); err == nil {
		t.Fatal("mismatched member signatures must error")
	}
	if _, err := NewKernelGroup(); err == nil {
		t.Fatal("empty group must error")
	}
}

func TestPeekRangeSlidingWindow(t *testing.T) {
	const n = 256
	m := NewMap()
	// Sliding-window averager: window of 4, slide by 1.
	avg := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
		w, err := PeekRange[int64](k.In("0"), 4)
		if err != nil {
			if len(w) > 0 {
				Recycle[int64](k.In("0"), len(w))
			}
			return Stop
		}
		sum := w[0] + w[1] + w[2] + w[3]
		if err := Push(k.Out("0"), sum/4); err != nil {
			return Stop
		}
		Recycle[int64](k.In("0"), 1)
		return Proceed
	})
	sink := newCollect()
	if _, err := m.Link(newGen(n), avg); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(avg, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	got := sink.values()
	if len(got) != n-3 {
		t.Fatalf("window outputs = %d, want %d", len(got), n-3)
	}
	for i, v := range got {
		want := int64((i + i + 3) / 2) // mean of i..i+3 floored
		if v != want {
			t.Fatalf("avg[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestSignalDeliveredWithElement(t *testing.T) {
	m := NewMap()
	src := NewLambda[int64](0, 1, func(k *LambdaKernel) Status {
		if err := PushSig(k.Out("0"), int64(42), SigUser); err != nil {
			return Stop
		}
		return Stop
	})
	var gotSig Signal
	var gotVal int64
	sink := NewLambda[int64](1, 0, func(k *LambdaKernel) Status {
		v, s, err := PopSig[int64](k.In("0"))
		if err != nil {
			return Stop
		}
		gotVal, gotSig = v, s
		return Proceed
	})
	if _, err := m.Link(src, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if gotVal != 42 || gotSig != SigUser {
		t.Fatalf("received (%d, %v), want (42, user)", gotVal, gotSig)
	}
}

func TestAllocateSend(t *testing.T) {
	m := NewMap()
	src := NewLambda[int64](0, 1, func(k *LambdaKernel) Status {
		a := Allocate[int64](k.Out("0"))
		a.Val = 7
		a.Sig = SigEOF
		if err := a.Send(); err != nil {
			return Stop
		}
		if err := a.Send(); err != nil { // second send must be a no-op
			return Stop
		}
		return Stop
	})
	sink := newCollect()
	if _, err := m.Link(src, sink); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if got := sink.values(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("allocate/send produced %v", got)
	}
}

func TestReportLinksAccounting(t *testing.T) {
	sink, rep := runSumApp(t, 1_000)
	_ = sink
	for _, l := range rep.Links {
		if l.Pushes != 1_000 || l.Pops != 1_000 {
			t.Fatalf("link %s pushes=%d pops=%d, want 1000/1000", l.Name, l.Pushes, l.Pops)
		}
	}
}

func TestManualSplitMerge(t *testing.T) {
	const n = 9_000
	m := NewMap()
	split := NewSplit[int64](3, RoundRobin)
	merge := NewMerge[int64](3)
	if _, err := m.Link(newGen(n), split, To("in")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w := newWork()
		if _, err := m.Link(split, w, From(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Link(w, merge, To(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sink := newCollect()
	if _, err := m.Link(merge, sink, From("out")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	got := sink.values()
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	var total int64
	for _, v := range got {
		total += v
	}
	want := int64(n) * int64(n-1) // sum of 2i for i in [0,n)
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestMapperAssignmentInReport(t *testing.T) {
	_, rep := runSumApp(t, 100)
	places := map[int]bool{}
	for _, k := range rep.Kernels {
		if k.Place < 0 {
			t.Fatalf("kernel %s unmapped", k.Name)
		}
		places[k.Place] = true
	}
	if len(places) == 0 {
		t.Fatal("no places assigned")
	}
}

func TestValidate(t *testing.T) {
	m := NewMap()
	sum := newSum()
	if _, err := m.Link(newGen(1), sum, To("input_a")); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err == nil {
		t.Fatal("unbound ports must fail validation")
	}
	if _, err := m.Link(newGen(1), sum, To("input_b")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(sum, newCollect()); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("complete topology failed validation: %v", err)
	}
	// Validate must not consume the map.
	if _, err := m.Exe(); err != nil {
		t.Fatalf("Exe after Validate: %v", err)
	}
}

func TestExeTwiceRejected(t *testing.T) {
	m := NewMap()
	if _, err := m.Link(newGen(5), newCollect()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exe(); err == nil {
		t.Fatal("second Exe must be rejected")
	}
}

func TestWithTopologyDrivesCutCost(t *testing.T) {
	// A deep pipeline mapped onto two sockets plus a remote node must
	// report a non-zero latency-weighted cut cost.
	m := NewMap()
	var prev Kernel = newGen(100)
	for i := 0; i < 7; i++ {
		w := newWork()
		if _, err := m.Link(prev, w); err != nil {
			t.Fatal(err)
		}
		prev = w
	}
	sink := newCollect()
	if _, err := m.Link(prev, sink); err != nil {
		t.Fatal(err)
	}
	top := mapper.NewLocal(4, 2)
	top.AddRemoteNode(4)
	rep, err := m.Exe(WithTopology(top))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CutCost <= 0 {
		t.Fatalf("cut cost = %v, want > 0 across sockets/nodes", rep.CutCost)
	}
	if len(sink.values()) != 100 {
		t.Fatalf("received %d", len(sink.values()))
	}
	places := map[int]bool{}
	for _, k := range rep.Kernels {
		places[k.Place] = true
	}
	if len(places) < 2 {
		t.Fatalf("9 kernels mapped onto %d place(s)", len(places))
	}
}
