package raft

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"raftlib/internal/gateway"
)

// decodeInts parses a newline-separated int64 batch, the wire format the
// template tests post through the gateway.
func decodeInts(p []byte) ([]int64, error) {
	var out []int64
	for _, line := range strings.Split(strings.TrimSpace(string(p)), "\n") {
		if line == "" {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("empty batch")
	}
	return out, nil
}

// postInts POSTs one batch for a tenant to a template's ingest URL and
// returns the HTTP status.
func postInts(t *testing.T, base, source, tenant string, vals ...int64) int {
	t.Helper()
	lines := make([]string, len(vals))
	for i, v := range vals {
		lines[i] = strconv.FormatInt(v, 10)
	}
	req, err := http.NewRequest("POST", base+"/v1/ingest/"+source, strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Raft-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// keepAlive builds a map holding one gateway-fed control source so the
// execution stays alive (and rewritable) until the test closes the
// intake. Returns the map and the source.
func keepAlive(t *testing.T, gw *gateway.Server) (*Map, *Source[int64]) {
	t.Helper()
	ctl := NewSource[int64]("ctl")
	if err := BindSource(gw, ctl, decodeInts); err != nil {
		t.Fatal(err)
	}
	m := NewMap()
	m.MustLink(ctl, newCollect())
	return m, ctl
}

// TestTemplatePerTenantInstantiation registers a subgraph template and
// drives it purely through gateway traffic: two tenants' pipelines must
// materialize on first request (requests racing the instantiation block
// and then succeed — none may be dropped), stay isolated, and be
// reaped out of the graph on demand with their lifecycle visible in the
// report.
func TestTemplatePerTenantInstantiation(t *testing.T) {
	gw, err := NewGateway(GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, ctl := keepAlive(t, gw)

	ex, err := m.ExeAsync(WithGateway(gw))
	if err != nil {
		t.Fatal(err)
	}
	rw := ex.Rewriter()

	var mu sync.Mutex
	sinks := map[string]*pacedCollect{}
	var builds atomic.Int64
	err = rw.RegisterTemplate(&SubgraphTemplate{
		Name: "double",
		Build: func(b *InstanceBuilder, key string) error {
			builds.Add(1)
			src := NewSource[int64]("in")
			BindInstanceSource(b, src, decodeInts)
			work := newWork()
			sink := newPacedCollect(0)
			b.MustLink(src, work)
			b.MustLink(work, sink)
			mu.Lock()
			sinks[key] = sink
			mu.Unlock()
			// Widen the instantiation window so concurrent first requests
			// really do race the build.
			time.Sleep(30 * time.Millisecond)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	// Unknown source with no template behind it stays a 404.
	if code := postInts(t, ts.URL, "nosuch", "alpha", 1); code != http.StatusNotFound {
		t.Fatalf("unknown source returned %d, want 404", code)
	}

	// Two tenants, several concurrent posters each, firing immediately:
	// the first request per tenant instantiates, the rest arrive
	// mid-instantiation and must block, not fail.
	const posters, posts = 3, 5
	var wg sync.WaitGroup
	var rejected atomic.Int64
	for _, tenant := range []string{"alpha", "beta"} {
		for g := 0; g < posters; g++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				for p := 0; p < posts; p++ {
					if code := postInts(t, ts.URL, "double", tenant, 1, 2, 3); code != http.StatusAccepted {
						rejected.Add(1)
					}
				}
			}(tenant)
		}
	}
	wg.Wait()
	if n := rejected.Load(); n != 0 {
		t.Fatalf("%d posts rejected during/after instantiation, want 0", n)
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("template built %d times, want once per tenant", n)
	}

	const wantPerTenant = posters * posts * 3 // elements per tenant
	for _, tenant := range []string{"alpha", "beta"} {
		mu.Lock()
		sink := sinks[tenant]
		mu.Unlock()
		if sink == nil {
			t.Fatalf("tenant %s never built", tenant)
		}
		waitFor(t, tenant+" drain", func() bool { return sink.count() >= wantPerTenant })
		var sum int64
		for _, v := range sink.values() {
			sum += v
		}
		if sink.count() != wantPerTenant || sum != posters*posts*int64(2*(1+2+3)) {
			t.Fatalf("tenant %s: %d elements sum %d, want %d elements sum %d",
				tenant, sink.count(), sum, wantPerTenant, posters*posts*12)
		}
	}

	// Scale to zero on demand; the bindings must leave the gateway.
	for _, tenant := range []string{"alpha", "beta"} {
		if err := rw.Reap("double", tenant); err != nil {
			t.Fatalf("reap %s: %v", tenant, err)
		}
	}

	ctl.CloseIntake()
	rep, err := ex.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// Every instance kernel is namespaced "double@tenant/..." and carries
	// join and leave stamps.
	instKernels := 0
	for _, kr := range rep.Kernels {
		if !strings.HasPrefix(kr.Name, "double@") {
			continue
		}
		instKernels++
		if kr.JoinedAt <= 0 || kr.LeftAt <= kr.JoinedAt {
			t.Fatalf("instance kernel %q stamps: joined %v left %v", kr.Name, kr.JoinedAt, kr.LeftAt)
		}
	}
	if instKernels != 6 { // 2 tenants x (source, work, sink)
		t.Fatalf("report shows %d instance kernels, want 6", instKernels)
	}
}

// ckptAccum sums its input and checkpoints the running total, so a
// reaped instance's state survives scale-to-zero.
type ckptAccum struct {
	KernelBase
	sum atomic.Int64
}

func newCkptAccum() *ckptAccum {
	k := &ckptAccum{}
	k.SetName("acc")
	AddInput[int64](k, "in")
	return k
}

func (a *ckptAccum) Run() Status {
	v, err := Pop[int64](a.In("in"))
	if err != nil {
		return Stop
	}
	a.sum.Add(v)
	return Proceed
}

func (a *ckptAccum) Snapshot() ([]byte, error) {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(a.sum.Load()))
	return b, nil
}

func (a *ckptAccum) Restore(snap []byte) error {
	if len(snap) != 8 {
		return fmt.Errorf("bad snapshot length %d", len(snap))
	}
	a.sum.Store(int64(binary.LittleEndian.Uint64(snap)))
	return nil
}

// TestTemplateReapRestoresState scales an instance to zero and back: the
// reap must checkpoint the instance's stateful kernel, and the next
// instantiation of the same key must resume from that snapshot (the
// namespaced kernel name is the stable checkpoint key).
func TestTemplateReapRestoresState(t *testing.T) {
	gw, err := NewGateway(GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, ctl := keepAlive(t, gw)
	ex, err := m.ExeAsync(WithGateway(gw))
	if err != nil {
		t.Fatal(err)
	}
	rw := ex.Rewriter()

	var mu sync.Mutex
	var accs []*ckptAccum
	err = rw.RegisterTemplate(&SubgraphTemplate{
		Name: "counter",
		Build: func(b *InstanceBuilder, key string) error {
			src := NewSource[int64]("in")
			BindInstanceSource(b, src, decodeInts)
			acc := newCkptAccum()
			b.MustLink(src, acc)
			mu.Lock()
			accs = append(accs, acc)
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	if code := postInts(t, ts.URL, "counter", "t1", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10); code != http.StatusAccepted {
		t.Fatalf("first post returned %d", code)
	}
	mu.Lock()
	first := accs[0]
	mu.Unlock()
	waitFor(t, "first instance sum", func() bool { return first.sum.Load() == 55 })

	if err := rw.Reap("counter", "t1"); err != nil {
		t.Fatalf("reap: %v", err)
	}

	// Traffic for the reaped key re-instantiates; the new instance must
	// pick up where the snapshot left off.
	if code := postInts(t, ts.URL, "counter", "t1", 5); code != http.StatusAccepted {
		t.Fatalf("post after reap returned %d", code)
	}
	mu.Lock()
	if len(accs) != 2 {
		mu.Unlock()
		t.Fatalf("template built %d times, want 2", len(accs))
	}
	second := accs[1]
	mu.Unlock()
	if second == first {
		t.Fatal("re-instantiation reused the reaped kernel")
	}
	waitFor(t, "restored sum", func() bool { return second.sum.Load() == 60 })

	if err := rw.Reap("counter", "t1"); err != nil {
		t.Fatalf("second reap: %v", err)
	}
	ctl.CloseIntake()
	if _, err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestTemplateIdleReap lets the scale-to-zero timer do the reaping: an
// instance with no traffic past its Idle window must leave the graph on
// its own, and later traffic must bring it back with state restored.
func TestTemplateIdleReap(t *testing.T) {
	gw, err := NewGateway(GatewayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, ctl := keepAlive(t, gw)
	ex, err := m.ExeAsync(WithGateway(gw))
	if err != nil {
		t.Fatal(err)
	}
	rw := ex.Rewriter()

	var mu sync.Mutex
	var accs []*ckptAccum
	err = rw.RegisterTemplate(&SubgraphTemplate{
		Name: "idle",
		Idle: 80 * time.Millisecond,
		Build: func(b *InstanceBuilder, key string) error {
			src := NewSource[int64]("in")
			BindInstanceSource(b, src, decodeInts)
			acc := newCkptAccum()
			b.MustLink(src, acc)
			mu.Lock()
			accs = append(accs, acc)
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	if code := postInts(t, ts.URL, "idle", "t1", 7); code != http.StatusAccepted {
		t.Fatalf("post returned %d", code)
	}
	mu.Lock()
	first := accs[0]
	mu.Unlock()
	waitFor(t, "sum", func() bool { return first.sum.Load() == 7 })

	// The idle reaper must remove the instance without being asked: stay
	// quiet past the Idle window, then post again — the traffic must hit a
	// fresh instance restored from the reaped one's snapshot. Each quiet
	// interval comfortably exceeds Idle, so even if an early probe lands
	// on the old instance (slow reaper) the next interval reaps it.
	deadline := time.Now().Add(15 * time.Second)
	for {
		time.Sleep(250 * time.Millisecond)
		code := postInts(t, ts.URL, "idle", "t1", 3)
		mu.Lock()
		rebuilt := len(accs) >= 2
		mu.Unlock()
		if code == http.StatusAccepted && rebuilt {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("instance never idle-reaped (last status %d, builds %d)", code, len(accs))
		}
	}
	mu.Lock()
	second := accs[len(accs)-1]
	mu.Unlock()
	if second == first {
		t.Fatal("idle reap never replaced the instance")
	}
	// Restored snapshot (>=7, plus any probe that hit the old instance)
	// plus the rebuilding post's 3.
	waitFor(t, "restored sum", func() bool { return second.sum.Load() >= 10 })

	if err := rw.Reap("idle", "t1"); err != nil {
		t.Fatalf("final reap: %v", err)
	}
	ctl.CloseIntake()
	if _, err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
}
