package raft

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"

	"raftlib/internal/core"
	"raftlib/internal/ringbuffer"
	"raftlib/internal/trace"
)

// Direction distinguishes input from output ports.
type Direction int

// Port directions.
const (
	// In marks a port that consumes a stream.
	In Direction = iota
	// Out marks a port that produces a stream.
	Out
)

// String returns "in" or "out".
func (d Direction) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// typedQueue is the element-typed operation set shared by both queue
// implementations (dynamic Ring and lock-free SPSC).
type typedQueue[T any] interface {
	Push(T, Signal) error
	TryPush(T, Signal) (bool, error)
	Pop() (T, Signal, error)
	TryPop() (T, Signal, bool, error)
}

// bulkQueue is the batched operation set both queue implementations provide:
// one lock acquisition (Ring) or one atomic publish (SPSC) per batch instead
// of per element.
type bulkQueue[T any] interface {
	PushN([]T, []Signal) error
	PopN([]T, []Signal) (int, error)
	DrainTo([]T, []Signal) (int, error)
}

// Port is one named, typed stream endpoint on a kernel. Ports are declared
// with AddInput / AddOutput in the kernel's constructor and accessed from
// Run via the generic stream operations (Pop, Push, Peek, ...).
type Port struct {
	name  string
	dir   Direction
	elem  reflect.Type
	owner *KernelBase

	// mk allocates the stream queue for a link whose producer has this
	// element type. Captured generically by AddInput/AddOutput.
	mk func(capacity, maxCap int, lockFree bool) (ringbuffer.Queue, any)
	// move transfers up to max elements from one typed queue to another
	// (both must carry this port's element type). Non-blocking on the
	// source; blocking on the destination. Used by the runtime's split and
	// merge adapters so they can be built without knowing T.
	move func(src, dst any, max int) (int, error)
	// moveBlocking transfers at least one element (blocking on the source
	// for the first), then up to max total.
	moveBlocking func(src, dst any, max int) (int, error)
	// mkMover returns a batched transfer closure with its own scratch
	// buffers of the given capacity: elements move src→dst as whole frames
	// (one PopN/DrainTo plus one PushN) instead of element-wise. Adapters
	// construct one mover each, so the scratch allocation happens once.
	mkMover func(scratch int) func(src, dst any, max int, block bool) (int, error)

	q     ringbuffer.Queue
	typed any
	async *asyncCell
	link  *Link
	batch *core.BatchControl

	// lane is the link's latency-marker mailbox, shared by both endpoint
	// ports (like batch above); nil when markers are off, which keeps the
	// disabled cost of every port operation to one pointer check.
	lane *trace.MarkerLane
	// stampEvery > 0 makes this (source-kernel output) port an ingest
	// point: one marker is stamped per stampEvery pushed elements, labeled
	// stampTenant/stampSource. stampLeft is the countdown; all three are
	// touched only by the producing goroutine.
	stampEvery  uint32
	stampLeft   uint32
	stampTenant string
	stampSource string

	// pending, when non-nil, is the replacement binding a graph-rewrite
	// transaction installed before sealing the current stream. The owning
	// kernel applies it itself: when a consuming operation reports the old
	// stream closed AND drained, the port swaps bindings and retries, so
	// the kernel never observes the splice as EOF. Installed by the
	// rewriter (before the seal, so the ErrClosed wake-up must find it);
	// consumed on the kernel's own goroutine.
	pending atomic.Pointer[pendingRebind]
}

// pendingRebind is a staged port binding: the new stream a consumer port
// migrates to once its sealed predecessor drains.
type pendingRebind struct {
	q     ringbuffer.Queue
	typed any
	async *asyncCell
	link  *Link
	batch *core.BatchControl
	lane  *trace.MarkerLane
	// applied is closed once the owning kernel has swapped to this
	// binding; the rewriter's commit waits on it so "Commit returned"
	// means the new structure carries the traffic.
	applied chan struct{}
}

// installPending stages a replacement binding on a continuing consumer
// port. Must be called before the current stream is sealed.
func (p *Port) installPending(b *pendingRebind) { p.pending.Store(b) }

// migrateOnClosed is the consumer side of the epoch-seal handoff: called
// with a port operation's error on the owning kernel's goroutine, it
// reports whether the port just swapped to a staged replacement binding
// (in which case the operation must retry against the new stream). The
// swap happens only once the sealed stream is fully drained, so FIFO
// order, signals and latency markers are preserved across the splice.
func (p *Port) migrateOnClosed(err error) bool {
	nb := p.pending.Load()
	if nb == nil || !errors.Is(err, ringbuffer.ErrClosed) {
		return false
	}
	if p.q != nil && p.q.Len() != 0 {
		return false // sealed but not drained; keep consuming
	}
	if !p.pending.CompareAndSwap(nb, nil) {
		return false
	}
	p.q, p.typed, p.async = nb.q, nb.typed, nb.async
	p.link, p.batch, p.lane = nb.link, nb.batch, nb.lane
	close(nb.applied)
	return true
}

// Name returns the port's name.
func (p *Port) Name() string { return p.name }

// Dir returns the port's direction.
func (p *Port) Dir() Direction { return p.dir }

// Type returns the element type carried by the port.
func (p *Port) Type() reflect.Type { return p.elem }

// Bound reports whether the port has been connected by Map.Link.
func (p *Port) Bound() bool { return p.link != nil }

// Queue returns the untyped view of the port's stream, or nil before Exe
// allocates it.
func (p *Port) Queue() ringbuffer.Queue { return p.q }

// Close closes the stream attached to the port. Producers call it (usually
// indirectly, via the runtime, which closes all output streams when a
// kernel stops) to deliver EOF downstream.
func (p *Port) Close() {
	if p.q != nil {
		p.q.Close()
	}
}

// Closed reports whether the attached stream has been closed.
func (p *Port) Closed() bool { return p.q != nil && p.q.Closed() }

// Len returns the number of buffered elements in the attached stream.
func (p *Port) Len() int {
	if p.q == nil {
		return 0
	}
	return p.q.Len()
}

// String implements fmt.Stringer.
func (p *Port) String() string {
	owner := "?"
	if p.owner != nil {
		owner = p.owner.Name()
	}
	return fmt.Sprintf("%s.%s(%s %s)", owner, p.name, p.dir, p.elem)
}

// bind attaches an allocated queue and async mailbox to the port.
func (p *Port) bind(q ringbuffer.Queue, typed any, async *asyncCell) {
	p.q = q
	p.typed = typed
	p.async = async
}

// BatchHint returns the adaptive batcher's chosen transfer size for the
// stream attached to this port, or def when the batcher has made no decision
// (or the port is unbound). Batch-aware kernels and adapters call it per
// invocation; it is one lock-free load.
func (p *Port) BatchHint(def int) int {
	if n := p.batch.Get(); n > 0 {
		return n
	}
	return def
}

// cloneSpec returns an unbound copy of the port (same name/type/factories)
// for the runtime's adapter construction.
func (p *Port) cloneSpec(name string, dir Direction) *Port {
	return &Port{
		name: name, dir: dir, elem: p.elem,
		mk: p.mk, move: p.move, moveBlocking: p.moveBlocking, mkMover: p.mkMover,
	}
}

func (p *Port) mustBeBound() {
	if p.typed == nil {
		panic(misuse(ErrPortUnbound, "port %s used before Map.Exe allocated its stream", p))
	}
}

func typeMismatchPanic[T any](p *Port) error {
	var zero T
	return misuse(ErrTypeMismatch, "port %s accessed with element type %T", p, zero)
}

// queueOf extracts the typed queue interface from a port, panicking with a
// descriptive message on element-type mismatch (a programming error that
// link-time type checking cannot see because the access type parameter is
// chosen at the call site).
func queueOf[T any](p *Port) typedQueue[T] {
	p.mustBeBound()
	q, ok := p.typed.(typedQueue[T])
	if !ok {
		panic(typeMismatchPanic[T](p))
	}
	return q
}

// ringOf extracts the dynamic ring for window operations (PeekRange and
// friends), which the lock-free queue does not support.
func ringOf[T any](p *Port) *ringbuffer.Ring[T] {
	p.mustBeBound()
	r, ok := p.typed.(*ringbuffer.Ring[T])
	if !ok {
		if _, isT := p.typed.(typedQueue[T]); isT {
			panic(misuse(ErrTypeMismatch, "window access on port %s requires dynamic queues (remove WithLockFreeQueues)", p))
		}
		panic(typeMismatchPanic[T](p))
	}
	return r
}

// Pop removes and returns the next element from an input port, blocking
// until data arrives. It returns ErrClosed when the stream is closed and
// drained — the paper's pop_s, minus the destructor (Go returns the value
// directly).
func Pop[T any](p *Port) (T, error) {
	for {
		v, _, err := queueOf[T](p).Pop()
		if err == nil {
			p.markPop()
			return v, nil
		}
		if !p.migrateOnClosed(err) {
			return v, err
		}
	}
}

// PopSig is Pop plus the synchronized signal delivered with the element.
func PopSig[T any](p *Port) (T, Signal, error) {
	for {
		v, s, err := queueOf[T](p).Pop()
		if err == nil {
			p.markPop()
			return v, s, nil
		}
		if !p.migrateOnClosed(err) {
			return v, s, err
		}
	}
}

// TryPop removes the next element without blocking. ok reports whether an
// element was available; err is ErrClosed once the stream is closed and
// drained.
func TryPop[T any](p *Port) (v T, ok bool, err error) {
	for {
		v, _, ok, err = queueOf[T](p).TryPop()
		if ok {
			p.markPop()
			return v, ok, err
		}
		if err == nil || !p.migrateOnClosed(err) {
			return v, ok, err
		}
	}
}

// Push appends v to an output port, blocking while the stream is full.
func Push[T any](p *Port, v T) error {
	err := queueOf[T](p).Push(v, SigNone)
	if err == nil {
		p.markPush(1)
	}
	return err
}

// PushSig appends v with a synchronized signal that downstream kernels
// receive together with the element.
func PushSig[T any](p *Port, v T, s Signal) error {
	err := queueOf[T](p).Push(v, s)
	if err == nil {
		p.markPush(1)
	}
	return err
}

// TryPush appends v without blocking; it reports whether the element was
// accepted.
func TryPush[T any](p *Port, v T) (bool, error) {
	ok, err := queueOf[T](p).TryPush(v, SigNone)
	if ok {
		p.markPush(1)
	}
	return ok, err
}

// PushBatch appends all of vs (more efficient than element-wise Push for
// high-rate streams); the final element carries sig.
func PushBatch[T any](p *Port, vs []T, sig Signal) error {
	err := ringOf[T](p).PushBatch(vs, sig)
	if err == nil {
		p.markPush(len(vs))
	}
	return err
}

// bulkOf extracts the batched queue interface from a port, panicking with a
// descriptive message on element-type mismatch.
func bulkOf[T any](p *Port) bulkQueue[T] {
	p.mustBeBound()
	q, ok := p.typed.(bulkQueue[T])
	if !ok {
		panic(typeMismatchPanic[T](p))
	}
	return q
}

// PushN appends all of vs to an output port in one bulk operation — a
// single lock acquisition (dynamic ring) or atomic publish (lock-free ring)
// per batch instead of one per element. Every element carries SigNone; use
// PushNSig to attach synchronized signals. PushN blocks while the stream is
// full and returns ErrClosed on a closed stream.
func PushN[T any](p *Port, vs []T) error {
	err := bulkOf[T](p).PushN(vs, nil)
	if err == nil {
		p.markPush(len(vs))
	}
	return err
}

// PushNSig is PushN with per-element synchronized signals: sigs must be nil
// (all SigNone) or have exactly len(vs) entries, delivered downstream
// aligned with their elements.
func PushNSig[T any](p *Port, vs []T, sigs []Signal) error {
	err := bulkOf[T](p).PushN(vs, sigs)
	if err == nil {
		p.markPush(len(vs))
	}
	return err
}

// PopN removes up to len(dst) elements from an input port in one bulk
// operation, blocking until at least one is available. It returns the count
// filled; once the stream is closed and drained it returns (0, ErrClosed).
// The elements' signals are consumed and discarded (like Pop); use PopNSig
// to observe them.
func PopN[T any](p *Port, dst []T) (int, error) {
	for {
		n, err := bulkOf[T](p).PopN(dst, nil)
		if n > 0 {
			p.markPop()
		}
		if err == nil || n > 0 || !p.migrateOnClosed(err) {
			return n, err
		}
	}
}

// PopNSig is PopN plus the elements' synchronized signals: the first n
// entries of sigs (which must hold at least len(dst)) receive the signals
// aligned with dst.
func PopNSig[T any](p *Port, dst []T, sigs []Signal) (int, error) {
	for {
		n, err := bulkOf[T](p).PopN(dst, sigs)
		if n > 0 {
			p.markPop()
		}
		if err == nil || n > 0 || !p.migrateOnClosed(err) {
			return n, err
		}
	}
}

// DrainTo is the non-blocking PopN: it removes whatever is buffered, up to
// len(dst) elements, returning 0 with a nil error when the stream is empty
// but open and (0, ErrClosed) once it is closed and drained.
func DrainTo[T any](p *Port, dst []T) (int, error) {
	for {
		n, err := bulkOf[T](p).DrainTo(dst, nil)
		if n > 0 {
			p.markPop()
		}
		if err == nil || n > 0 || !p.migrateOnClosed(err) {
			return n, err
		}
	}
}

// Peek returns the element at offset i from the stream head without
// consuming it, blocking until it arrives.
func Peek[T any](p *Port, i int) (T, error) {
	for {
		v, _, err := ringOf[T](p).Peek(i)
		if err == nil || !p.migrateOnClosed(err) {
			return v, err
		}
	}
}

// PeekRange blocks until n elements are available and returns them
// oldest-first, without consuming them — the paper's sliding-window
// peek_range (§3). When the buffered region is contiguous the returned
// slice aliases queue storage (zero copy); it is valid until the next
// Recycle/Pop on the port. If the stream closes with fewer than n elements
// the remainder is returned along with ErrClosed. Consume window elements
// with Recycle.
func PeekRange[T any](p *Port, n int) ([]T, error) {
	for {
		vs, _, err := ringOf[T](p).PeekRange(n)
		if err == nil || len(vs) > 0 || !p.migrateOnClosed(err) {
			return vs, err
		}
	}
}

// PeekRangeSig is PeekRange plus the elements' synchronized signals (nil
// when every signal is SigNone).
func PeekRangeSig[T any](p *Port, n int) ([]T, []Signal, error) {
	for {
		vs, sigs, err := ringOf[T](p).PeekRange(n)
		if err == nil || len(vs) > 0 || !p.migrateOnClosed(err) {
			return vs, sigs, err
		}
	}
}

// Recycle consumes the n oldest elements of an input port after a
// PeekRange, sliding the window forward.
func Recycle[T any](p *Port, n int) {
	ringOf[T](p).Recycle(n)
	if n > 0 {
		p.markPop()
	}
}

// Alloc is a writable slot on an output stream, the analogue of the
// paper's allocate_s return object: populate Val (and optionally Sig) and
// call Send.
type Alloc[T any] struct {
	// Val is the element to send.
	Val T
	// Sig is the synchronized signal to send with the element.
	Sig Signal

	p    *Port
	sent bool
}

// Allocate returns a slot for writing one element to an output port.
func Allocate[T any](p *Port) *Alloc[T] {
	p.mustBeBound()
	return &Alloc[T]{p: p}
}

// Send pushes the slot's value downstream. A second Send is a no-op
// returning nil, matching the send-once semantics of allocate_s.
func (a *Alloc[T]) Send() error {
	if a.sent {
		return nil
	}
	a.sent = true
	err := queueOf[T](a.p).Push(a.Val, a.Sig)
	if err == nil {
		a.p.markPush(1)
	}
	return err
}

// moveItems transfers up to max elements between two queues of the same
// element type without blocking on the source. It returns the number moved
// and ErrClosed once the source is closed and drained.
func moveItems[T any](src, dst any, max int) (int, error) {
	s, ok := src.(typedQueue[T])
	if !ok {
		panic(misuse(ErrTypeMismatch, "internal transfer source type mismatch (%T)", src))
	}
	d := dst.(typedQueue[T])
	moved := 0
	for moved < max {
		v, sig, ok, err := s.TryPop()
		if err != nil {
			return moved, err
		}
		if !ok {
			return moved, nil
		}
		if err := d.Push(v, sig); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}

// moveBatched transfers up to max elements src→dst as one frame: a single
// PopN (block=true) or DrainTo (block=false) into the caller-owned scratch
// buffers followed by a single PushN — two bulk queue operations per hop
// instead of 2×n element operations. When either queue lacks the bulk
// interface it falls back to the element-wise movers. max is capped at the
// scratch capacity.
func moveBatched[T any](src, dst any, max int, block bool, vals []T, sigs []Signal) (int, error) {
	sb, sok := src.(bulkQueue[T])
	db, dok := dst.(bulkQueue[T])
	if !sok || !dok {
		if block {
			return moveItemsBlocking[T](src, dst, max)
		}
		return moveItems[T](src, dst, max)
	}
	if max > len(vals) {
		max = len(vals)
	}
	if max < 1 {
		max = 1
	}
	var (
		n   int
		err error
	)
	if block {
		n, err = sb.PopN(vals[:max], sigs[:max])
	} else {
		n, err = sb.DrainTo(vals[:max], sigs[:max])
	}
	if n == 0 {
		return 0, err
	}
	if err := db.PushN(vals[:n], sigs[:n]); err != nil {
		return 0, err
	}
	var zero T
	for i := 0; i < n; i++ {
		vals[i] = zero // release references held by the scratch buffer
	}
	return n, nil
}

// moveItemsBlocking transfers at least one element (blocking on the source
// for the first) and then up to max total.
func moveItemsBlocking[T any](src, dst any, max int) (int, error) {
	s := src.(typedQueue[T])
	d := dst.(typedQueue[T])
	v, sig, err := s.Pop()
	if err != nil {
		return 0, err
	}
	if err := d.Push(v, sig); err != nil {
		return 0, err
	}
	moved := 1
	for moved < max {
		v, sig, ok, err := s.TryPop()
		if err != nil {
			return moved, err
		}
		if !ok {
			return moved, nil
		}
		if err := d.Push(v, sig); err != nil {
			return moved, err
		}
		moved++
	}
	return moved, nil
}
