package raft

import (
	"strings"
	"testing"
)

// mustPanic asserts fn panics with a message containing want. API-misuse
// panics carry error values (wrapping the raft sentinel errors) so that
// recover-based supervision can classify them; plain string panics are also
// accepted.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", want)
		}
		var msg string
		switch v := r.(type) {
		case string:
			msg = v
		case error:
			msg = v.Error()
		default:
			t.Fatalf("panic value %v (%T), want string or error", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not mention %q", msg, want)
		}
	}()
	fn()
}

func TestPortAccessBeforeExePanics(t *testing.T) {
	k := newSum()
	mustPanic(t, "before Map.Exe", func() { _, _ = Pop[int64](k.In("input_a")) })
}

func TestUnknownPortPanics(t *testing.T) {
	k := newSum()
	mustPanic(t, "no input port", func() { k.In("nope") })
	mustPanic(t, "no output port", func() { k.Out("nope") })
}

func TestDuplicatePortPanics(t *testing.T) {
	k := newSum()
	mustPanic(t, "twice", func() { AddInput[int64](k, "input_a") })
}

func TestWrongElementTypePanics(t *testing.T) {
	// Run a tiny app where the kernel intentionally uses the wrong type
	// parameter; the resulting panic is surfaced by Exe as an error that
	// names the port and the bad type.
	m := NewMap()
	bad := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
		_, _ = Pop[string](k.In("0")) // wrong T
		return Stop
	})
	sink := newCollect()
	if _, err := m.Link(newGen(5), bad); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(bad, sink); err != nil {
		t.Fatal(err)
	}
	_, err := m.Exe()
	if err == nil || !strings.Contains(err.Error(), "accessed with element type") {
		t.Fatalf("err = %v", err)
	}
}

func TestWindowAccessOnLockFreeQueueSurfacesError(t *testing.T) {
	m := NewMap()
	windowed := NewLambdaIO[int64, int64](1, 1, func(k *LambdaKernel) Status {
		_, _ = PeekRange[int64](k.In("0"), 4) // unsupported on SPSC
		return Stop
	})
	sink := newCollect()
	if _, err := m.Link(newGen(10), windowed); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Link(windowed, sink); err != nil {
		t.Fatal(err)
	}
	_, err := m.Exe(WithLockFreeQueues())
	if err == nil || !strings.Contains(err.Error(), "dynamic queues") {
		t.Fatalf("err = %v", err)
	}
}

func TestPortIntrospection(t *testing.T) {
	k := newSum()
	p := k.In("input_a")
	if p.Name() != "input_a" || p.Dir() != In || p.Type().Kind().String() != "int64" {
		t.Fatalf("port introspection: %s %s %s", p.Name(), p.Dir(), p.Type())
	}
	if p.Bound() {
		t.Fatal("unlinked port reports bound")
	}
	if got := k.Out("sum").Dir(); got != Out {
		t.Fatalf("dir = %v", got)
	}
	if In.String() != "in" || Out.String() != "out" {
		t.Fatal("direction strings")
	}
	if len(k.InNames()) != 2 || len(k.OutNames()) != 1 {
		t.Fatal("port name lists")
	}
	if s := p.String(); !strings.Contains(s, "input_a") {
		t.Fatalf("port string = %q", s)
	}
}

func TestSendAsyncOnUnboundPortPanics(t *testing.T) {
	k := newSum()
	mustPanic(t, "SendAsync on unbound port", func() { k.Out("sum").SendAsync(SigUser) })
}

func TestSplitMergeWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSplit(0) must panic")
		}
	}()
	NewSplit[int](0, RoundRobin)
}

func TestMergeWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMerge(0) must panic")
		}
	}()
	NewMerge[int](0)
}

func TestSplitPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || LeastUtilized.String() != "least-utilized" {
		t.Fatal("policy strings")
	}
}
