package raft

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"raftlib/internal/trace"
)

// String renders the execution report as an aligned text summary: the
// user-visible face of the paper's performance-monitoring claims (§4.1:
// "the user has access to monitor useful things such as queue size,
// current kernel configuration ... mean queue occupancy, service rate,
// throughput").
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "raft execution report: %v under %s, mapper cut cost %v\n",
		r.Elapsed, r.Scheduler, r.CutCost)

	// λ̂/µ̂/ρ̂ columns appear only when the online estimator ran (they would
	// be all-zero noise otherwise).
	rates := false
	for _, l := range r.Links {
		if l.LambdaHat != 0 || l.MuHat != 0 {
			rates = true
			break
		}
	}

	// The lifecycle columns appear only when the graph was rewritten at
	// runtime: kernels spliced in or retired mid-run carry joined/left
	// offsets, and rendering them distinguishes a departed kernel's final
	// numbers from a live kernel's current ones. A static graph keeps the
	// pre-rewrite layout.
	life := false
	for _, k := range r.Kernels {
		if k.JoinedAt != 0 || k.LeftAt != 0 {
			life = true
			break
		}
	}

	fmt.Fprintf(&b, "\nkernels (%d):\n", len(r.Kernels))
	fmt.Fprintf(&b, "  %-28s %-6s %-12s %-14s %-14s %-14s", "name", "place", "runs", "mean svc", "p99 svc", "rate/s")
	if life {
		fmt.Fprintf(&b, " %-10s %-10s", "joined", "left")
	}
	if rates {
		fmt.Fprintf(&b, " %-12s", "µ̂/s")
	}
	b.WriteByte('\n')
	for _, k := range r.Kernels {
		fmt.Fprintf(&b, "  %-28s %-6d %-12d %-14s %-14s %-14.0f",
			k.Name, k.Place, k.Runs, fmtNanos(k.MeanSvcNanos), fmtNanos(float64(k.SvcP99Nanos)), k.RatePerSec)
		if life {
			fmt.Fprintf(&b, " %-10s %-10s", fmtStamp(k.JoinedAt), fmtStamp(k.LeftAt))
		}
		if rates {
			fmt.Fprintf(&b, " %-12.0f", k.MuHat)
		}
		b.WriteByte('\n')
	}

	// drop and vhold columns appear only when some link actually shed or
	// took the zero-copy view path; the lifecycle columns only when some
	// stream was spliced in or sealed mid-run (all-zero columns otherwise).
	drops, views, linkLife := false, false, false
	for _, l := range r.Links {
		if l.Dropped > 0 {
			drops = true
		}
		if l.Views > 0 {
			views = true
		}
		if l.JoinedAt != 0 || l.LeftAt != 0 {
			linkLife = true
		}
	}

	fmt.Fprintf(&b, "\nstreams (%d):\n", len(r.Links))
	writeTable(&b, streamCols(rates, drops, views, linkLife), len(r.Links), func(i int) *LinkReport { return &r.Links[i] })

	if len(r.Groups) > 0 {
		fmt.Fprintf(&b, "\nreplicated groups (%d):\n", len(r.Groups))
		for _, g := range r.Groups {
			fmt.Fprintf(&b, "  %-28s width %d/%d\n", g.Name, g.ActiveAtEnd, g.MaxReplicas)
		}
	}
	if r.MonitorTicks > 0 {
		fmt.Fprintf(&b, "\nmonitor: %d ticks, %d events\n", r.MonitorTicks, len(r.MonitorEvents))
		for _, e := range r.MonitorEvents {
			fmt.Fprintf(&b, "  %-10s %-40s %d -> %d\n", e.Kind, e.Target, e.From, e.To)
		}
	}
	if len(r.Recoveries) > 0 || len(r.Bridges) > 0 {
		fmt.Fprintf(&b, "\nrecoveries (%d restarts, %d bridges):\n", len(r.Recoveries), len(r.Bridges))
		for _, k := range r.Kernels {
			if k.Restarts > 0 {
				fmt.Fprintf(&b, "  kernel %-28s %d restarts\n", k.Name, k.Restarts)
			}
		}
		for _, e := range r.Recoveries {
			if !e.Recovered {
				fmt.Fprintf(&b, "  kernel %-28s FAILED after %d attempts: %s\n", e.Kernel, e.Attempt, e.Cause)
			}
		}
		for _, br := range r.Bridges {
			fmt.Fprintf(&b, "  bridge %-28s %d reconnects, %d replayed, %d dropped, %v down\n",
				br.Stream, br.Reconnects, br.Replayed, br.Dropped, br.Downtime)
		}
	}
	if r.Latency != nil && (r.Latency.Retired > 0 || r.Latency.FlightDumps > 0) {
		fmt.Fprintf(&b, "\nlatency (marker stride %d, %d retired):\n", r.Latency.Stride, r.Latency.Retired)
		writeTable(&b, flowCols(), len(r.Latency.Flows),
			func(i int) *traceFlow { return &r.Latency.Flows[i] })
		if len(r.Latency.Stages) > 0 {
			fmt.Fprintf(&b, " per-stage residence:\n")
			writeTable(&b, stageCols(), len(r.Latency.Stages),
				func(i int) *traceStage { return &r.Latency.Stages[i] })
		}
		if r.Latency.FlightDumps > 0 {
			fmt.Fprintf(&b, "  flight recorder: %d dump(s) in %s\n",
				r.Latency.FlightDumps, r.Latency.FlightDir)
		}
	}
	if r.Gateway != nil {
		fmt.Fprintf(&b, "\ngateway (%s): %d tenants, %d sources\n",
			r.Gateway.Addr, len(r.Gateway.Tenants), len(r.Gateway.Sources))
		writeTable(&b, tenantCols(), len(r.Gateway.Tenants),
			func(i int) *GatewayTenant { return &r.Gateway.Tenants[i] })
		for _, s := range r.Gateway.Sources {
			fmt.Fprintf(&b, "  source %-28s %d admitted, %d dropped, %d copies saved\n",
				s.Name, s.AdmittedElems, s.Dropped, s.CopiesSaved)
		}
	}
	return b.String()
}

// col is one column of an aligned report table: header, width and cell
// renderer live together, so a new column can never misalign the layout
// (header and cells are always emitted from the same spec — the drift
// that used to creep in when the two printf strings were edited apart).
type col[T any] struct {
	head  string
	width int
	cell  func(T) string
}

// writeTable renders the header row and n data rows from one column spec.
func writeTable[T any](b *strings.Builder, cols []col[T], n int, row func(int) T) {
	b.WriteByte(' ')
	for _, c := range cols {
		fmt.Fprintf(b, " %-*s", c.width, c.head)
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		r := row(i)
		b.WriteByte(' ')
		for _, c := range cols {
			fmt.Fprintf(b, " %-*s", c.width, c.cell(r))
		}
		b.WriteByte('\n')
	}
}

// streamCols is the streams-section layout. The drop column appears only
// when some link shed elements; the estimator columns only when rate
// control ran; the lifecycle columns only when a rewrite spliced or
// sealed a stream mid-run.
func streamCols(rates, drops, views, life bool) []col[*LinkReport] {
	cols := []col[*LinkReport]{
		{"link", 44, func(l *LinkReport) string { return l.Name }},
		{"ring", 6, func(l *LinkReport) string { return l.Ring }},
		{"cap", 8, func(l *LinkReport) string { return fmt.Sprintf("%d", l.FinalCap) }},
		{"mean occ", 10, func(l *LinkReport) string { return fmt.Sprintf("%.1f", l.MeanOccupancy) }},
		{"occ p99", 8, func(l *LinkReport) string { return fmt.Sprintf("%d", l.OccP99) }},
		{"full%", 8, func(l *LinkReport) string { return fmt.Sprintf("%.1f", 100*l.FullFrac) }},
		{"starv%", 8, func(l *LinkReport) string { return fmt.Sprintf("%.1f", 100*l.StarvedFrac) }},
		{"resz", 5, func(l *LinkReport) string { return fmt.Sprintf("%d", l.Resizes) }},
		{"grows", 6, func(l *LinkReport) string { return fmt.Sprintf("%d", l.Grows) }},
		{"spins", 7, func(l *LinkReport) string { return fmt.Sprintf("%d", l.SpinYields+l.SpinSleeps) }},
		{"batch", 6, func(l *LinkReport) string { return fmt.Sprintf("%d", l.Batch) }},
	}
	if drops {
		cols = append(cols,
			col[*LinkReport]{"drop", 8, func(l *LinkReport) string { return fmt.Sprintf("%d", l.Dropped) }})
	}
	if views {
		cols = append(cols,
			col[*LinkReport]{"views", 8, func(l *LinkReport) string { return fmt.Sprintf("%d", l.Views) }},
			col[*LinkReport]{"vhold", 10, func(l *LinkReport) string { return fmtNanos(float64(l.ViewHoldNs)) }})
	}
	if life {
		cols = append(cols,
			col[*LinkReport]{"joined", 10, func(l *LinkReport) string { return fmtStamp(l.JoinedAt) }},
			col[*LinkReport]{"left", 10, func(l *LinkReport) string { return fmtStamp(l.LeftAt) }})
	}
	if rates {
		cols = append(cols,
			col[*LinkReport]{"λ̂/s", 12, func(l *LinkReport) string { return fmt.Sprintf("%.0f", l.LambdaHat) }},
			col[*LinkReport]{"µ̂/s", 12, func(l *LinkReport) string { return fmt.Sprintf("%.0f", l.MuHat) }},
			col[*LinkReport]{"ρ̂", 6, func(l *LinkReport) string { return fmt.Sprintf("%.2f", l.RhoHat) }})
	}
	return cols
}

// fmtStamp renders a lifecycle offset: "-" for a kernel or stream that
// was part of the original graph (joined) or still present at shutdown
// (left), the offset from execution start otherwise.
func fmtStamp(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return "+" + fmtNanos(float64(d))
}

// traceFlow / traceStage alias the marker-domain aggregates so the
// generic table writer can address them without re-declaring the shape.
type (
	traceFlow  = trace.FlowStats
	traceStage = trace.StageStats
)

// flowName renders a flow's tenant/source pair (bare source when the
// flow never crossed the gateway).
func flowName(f *traceFlow) string {
	if f.Tenant == "" {
		return f.Source
	}
	return f.Tenant + "/" + f.Source
}

// flowCols is the per-flow latency-table layout.
func flowCols() []col[*traceFlow] {
	return []col[*traceFlow]{
		{"flow", 28, flowName},
		{"count", 8, func(f *traceFlow) string { return fmt.Sprintf("%d", f.Count) }},
		{"mean", 10, func(f *traceFlow) string { return fmtNanos(float64(f.Mean())) }},
		{"p50", 10, func(f *traceFlow) string { return fmtNanos(float64(f.Quantile(0.50))) }},
		{"p99", 10, func(f *traceFlow) string { return fmtNanos(float64(f.Quantile(0.99))) }},
		{"max", 10, func(f *traceFlow) string { return fmtNanos(float64(f.MaxNs)) }},
	}
}

// stageCols is the per-stage residence-attribution layout: how long the
// sampled elements sat in each stage's inbound queue versus inside the
// stage itself.
func stageCols() []col[*traceStage] {
	return []col[*traceStage]{
		{"stage", 44, func(s *traceStage) string { return s.Stage }},
		{"hops", 8, func(s *traceStage) string { return fmt.Sprintf("%d", s.Count) }},
		{"queue mean", 11, func(s *traceStage) string {
			if s.Count == 0 {
				return "-"
			}
			return fmtNanos(float64(s.QueueNs) / float64(s.Count))
		}},
		{"kernel mean", 11, func(s *traceStage) string {
			if s.Count == 0 {
				return "-"
			}
			return fmtNanos(float64(s.KernelNs) / float64(s.Count))
		}},
	}
}

// tenantCols is the gateway tenant-table layout.
func tenantCols() []col[*GatewayTenant] {
	return []col[*GatewayTenant]{
		{"tenant", 20, func(t *GatewayTenant) string { return t.Name }},
		{"batches", 10, func(t *GatewayTenant) string { return fmt.Sprintf("%d", t.AdmittedBatches) }},
		{"elems", 12, func(t *GatewayTenant) string { return fmt.Sprintf("%d", t.AdmittedElems) }},
		{"shed:quota", 11, func(t *GatewayTenant) string { return fmt.Sprintf("%d", t.ShedQuota) }},
		{"shed:model", 11, func(t *GatewayTenant) string { return fmt.Sprintf("%d", t.ShedModel) }},
		{"e2e p99", 10, func(t *GatewayTenant) string {
			if t.E2EP99 == 0 {
				return "-"
			}
			return fmtNanos(float64(t.E2EP99))
		}},
	}
}

// fmtNanos renders a nanosecond quantity with an adaptive unit.
func fmtNanos(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// Dot renders the current topology in Graphviz DOT format — kernels as
// nodes, streams as edges labeled with port names and element types. Call
// it before or after Exe (after Exe it includes runtime-inserted adapters
// and replicas).
func (m *Map) Dot() string {
	var b strings.Builder
	b.WriteString("digraph raft {\n  rankdir=LR;\n  node [shape=box];\n")
	names := make(map[*KernelBase]string, len(m.kernels))
	ordered := make([]string, 0, len(m.kernels))
	for _, k := range m.kernels {
		kb := k.kernelBase()
		id := fmt.Sprintf("k%d", m.index[kb])
		names[kb] = id
		ordered = append(ordered, fmt.Sprintf("  %s [label=%q];\n", id, kb.Name()))
	}
	sort.Strings(ordered)
	for _, line := range ordered {
		b.WriteString(line)
	}
	for _, l := range m.links {
		fmt.Fprintf(&b, "  %s -> %s [label=\"%s->%s : %s\"];\n",
			names[l.Src.kernelBase()], names[l.Dst.kernelBase()],
			l.SrcPort.name, l.DstPort.name, l.SrcPort.elem)
	}
	b.WriteString("}\n")
	return b.String()
}
