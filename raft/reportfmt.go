package raft

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the execution report as an aligned text summary: the
// user-visible face of the paper's performance-monitoring claims (§4.1:
// "the user has access to monitor useful things such as queue size,
// current kernel configuration ... mean queue occupancy, service rate,
// throughput").
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "raft execution report: %v under %s, mapper cut cost %v\n",
		r.Elapsed, r.Scheduler, r.CutCost)

	// λ̂/µ̂/ρ̂ columns appear only when the online estimator ran (they would
	// be all-zero noise otherwise).
	rates := false
	for _, l := range r.Links {
		if l.LambdaHat != 0 || l.MuHat != 0 {
			rates = true
			break
		}
	}

	fmt.Fprintf(&b, "\nkernels (%d):\n", len(r.Kernels))
	fmt.Fprintf(&b, "  %-28s %-6s %-12s %-14s %-14s %-14s", "name", "place", "runs", "mean svc", "p99 svc", "rate/s")
	if rates {
		fmt.Fprintf(&b, " %-12s", "µ̂/s")
	}
	b.WriteByte('\n')
	for _, k := range r.Kernels {
		fmt.Fprintf(&b, "  %-28s %-6d %-12d %-14s %-14s %-14.0f",
			k.Name, k.Place, k.Runs, fmtNanos(k.MeanSvcNanos), fmtNanos(float64(k.SvcP99Nanos)), k.RatePerSec)
		if rates {
			fmt.Fprintf(&b, " %-12.0f", k.MuHat)
		}
		b.WriteByte('\n')
	}

	fmt.Fprintf(&b, "\nstreams (%d):\n", len(r.Links))
	fmt.Fprintf(&b, "  %-44s %-6s %-8s %-10s %-8s %-8s %-8s %-5s %-6s %-7s %-6s", "link", "ring", "cap", "mean occ", "occ p99", "full%", "starv%", "resz", "grows", "spins", "batch")
	if rates {
		fmt.Fprintf(&b, " %-12s %-12s %-6s", "λ̂/s", "µ̂/s", "ρ̂")
	}
	b.WriteByte('\n')
	for _, l := range r.Links {
		fmt.Fprintf(&b, "  %-44s %-6s %-8d %-10.1f %-8d %-8.1f %-8.1f %-5d %-6d %-7d %-6d",
			l.Name, l.Ring, l.FinalCap, l.MeanOccupancy, l.OccP99, 100*l.FullFrac, 100*l.StarvedFrac, l.Resizes, l.Grows, l.SpinYields+l.SpinSleeps, l.Batch)
		if rates {
			fmt.Fprintf(&b, " %-12.0f %-12.0f %-6.2f", l.LambdaHat, l.MuHat, l.RhoHat)
		}
		b.WriteByte('\n')
	}

	if len(r.Groups) > 0 {
		fmt.Fprintf(&b, "\nreplicated groups (%d):\n", len(r.Groups))
		for _, g := range r.Groups {
			fmt.Fprintf(&b, "  %-28s width %d/%d\n", g.Name, g.ActiveAtEnd, g.MaxReplicas)
		}
	}
	if r.MonitorTicks > 0 {
		fmt.Fprintf(&b, "\nmonitor: %d ticks, %d events\n", r.MonitorTicks, len(r.MonitorEvents))
		for _, e := range r.MonitorEvents {
			fmt.Fprintf(&b, "  %-10s %-40s %d -> %d\n", e.Kind, e.Target, e.From, e.To)
		}
	}
	if len(r.Recoveries) > 0 || len(r.Bridges) > 0 {
		fmt.Fprintf(&b, "\nrecoveries (%d restarts, %d bridges):\n", len(r.Recoveries), len(r.Bridges))
		for _, k := range r.Kernels {
			if k.Restarts > 0 {
				fmt.Fprintf(&b, "  kernel %-28s %d restarts\n", k.Name, k.Restarts)
			}
		}
		for _, e := range r.Recoveries {
			if !e.Recovered {
				fmt.Fprintf(&b, "  kernel %-28s FAILED after %d attempts: %s\n", e.Kernel, e.Attempt, e.Cause)
			}
		}
		for _, br := range r.Bridges {
			fmt.Fprintf(&b, "  bridge %-28s %d reconnects, %d replayed, %d dropped, %v down\n",
				br.Stream, br.Reconnects, br.Replayed, br.Dropped, br.Downtime)
		}
	}
	return b.String()
}

// fmtNanos renders a nanosecond quantity with an adaptive unit.
func fmtNanos(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// Dot renders the current topology in Graphviz DOT format — kernels as
// nodes, streams as edges labeled with port names and element types. Call
// it before or after Exe (after Exe it includes runtime-inserted adapters
// and replicas).
func (m *Map) Dot() string {
	var b strings.Builder
	b.WriteString("digraph raft {\n  rankdir=LR;\n  node [shape=box];\n")
	names := make(map[*KernelBase]string, len(m.kernels))
	ordered := make([]string, 0, len(m.kernels))
	for _, k := range m.kernels {
		kb := k.kernelBase()
		id := fmt.Sprintf("k%d", m.index[kb])
		names[kb] = id
		ordered = append(ordered, fmt.Sprintf("  %s [label=%q];\n", id, kb.Name()))
	}
	sort.Strings(ordered)
	for _, line := range ordered {
		b.WriteString(line)
	}
	for _, l := range m.links {
		fmt.Fprintf(&b, "  %s -> %s [label=\"%s->%s : %s\"];\n",
			names[l.Src.kernelBase()], names[l.Dst.kernelBase()],
			l.SrcPort.name, l.DstPort.name, l.SrcPort.elem)
	}
	b.WriteString("}\n")
	return b.String()
}
