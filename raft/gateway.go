package raft

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"raftlib/internal/core"
	"raftlib/internal/gateway"
	"raftlib/internal/qmodel"
	"raftlib/internal/trace"
)

// WithGateway attaches a multi-tenant ingestion gateway (see
// internal/gateway and NewGateway) to the run: Exe wires every source
// registered on it (BindSource) to that source's engine link — live
// occupancy, the online λ̂/µ̂/ρ̂ estimates, the consumer replica width and
// the best-effort drop counter — starts its listeners just before the
// graph runs, and stops them when the graph completes. Admission
// decisions land on the run's trace bus when WithTrace is active, and the
// Report carries a GatewayReport.
func WithGateway(gw *gateway.Server) Option {
	return func(c *Config) { c.Gateway = gw }
}

// Gateway re-exports the ingestion-gateway server type so applications
// reference it without importing the internal package.
type Gateway = gateway.Server

// GatewayConfig re-exports the gateway configuration so applications
// construct gateways without importing the internal package.
type GatewayConfig = gateway.Config

// GatewayQuota re-exports the per-tenant quota type.
type GatewayQuota = gateway.Quota

// NewGateway builds an ingestion gateway, binding its listeners eagerly
// so the address can be advertised before Exe starts serving.
func NewGateway(cfg GatewayConfig) (*gateway.Server, error) {
	return gateway.New(cfg)
}

// sourceBatch is one admitted batch in flight from the gateway to the
// Source kernel; done reports delivery (nil = in the stream's FIFO).
// pooled marks a batch whose buffer the source owns (leased by
// BindSourceAppend) and recycles after delivery.
type sourceBatch[T any] struct {
	vals   []T
	done   chan error
	pooled bool
	// tenant is the admitting tenant's name, stamped onto sampled latency
	// markers so e2e distributions attribute per tenant.
	tenant string
}

// Source is an externally-fed source kernel: the bridge between the
// ingestion gateway's admitted batches and a graph stream. It has a
// single output port "out"; batches arrive through inject (called by the
// gateway on its HTTP/framed serving goroutines), are pushed in bulk onto
// the stream, and the caller is unblocked only once the batch is in the
// FIFO — so an accepted request means exactly-once delivery to the graph.
// The kernel stops after CloseIntake (draining buffered batches first) or
// when its downstream closes the stream (abort).
type Source[T any] struct {
	KernelBase

	feed       chan sourceBatch[T]
	intakeDone chan struct{}
	stopped    chan struct{}
	closeOnce  sync.Once
	stopOnce   sync.Once

	// pool recycles decode buffers between requests (BindSourceAppend
	// leases from it, deliver returns to it), so a steady ingest stream
	// stops allocating a fresh intermediate slice per batch.
	pool sync.Pool
	// copiesSaved counts batches that skipped the per-request intermediate
	// allocation: decoded into a pooled buffer, committed into ring storage
	// through a write view, buffer recycled. Surfaced as CopiesSaved in the
	// gateway's /v1/stats.
	copiesSaved atomic.Uint64
	// copyPush forces the plain PushN delivery path (the copy arm of the
	// A15 ablation).
	copyPush bool
}

// NewSource builds a gateway-fed source kernel. The name doubles as the
// {source} path segment of the gateway's ingest URL.
func NewSource[T any](name string) *Source[T] {
	s := &Source[T]{
		feed:       make(chan sourceBatch[T], 16),
		intakeDone: make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	s.SetName(name)
	AddOutput[T](s, "out")
	return s
}

// CloseIntake ends the source's stream: no new batches are accepted,
// buffered ones drain, then EOF propagates downstream. Idempotent; wired
// to the gateway's close endpoint by BindSource.
func (s *Source[T]) CloseIntake() {
	s.closeOnce.Do(func() { close(s.intakeDone) })
}

// Run delivers admitted batches onto the output stream. A 5ms poll keeps
// the kernel responsive to downstream aborts (the stream force-closed by
// Raise or deadlock teardown) even when no traffic arrives.
func (s *Source[T]) Run() Status {
	out := s.Out("out")
	select {
	case b := <-s.feed:
		b.done <- s.deliver(out, b)
		return Proceed
	case <-s.intakeDone:
		// Drain batches that made it into the feed before close; their
		// injectors are still waiting on done.
		for {
			select {
			case b := <-s.feed:
				b.done <- s.deliver(out, b)
			default:
				return Stop
			}
		}
	case <-time.After(5 * time.Millisecond):
		if q := out.Queue(); q != nil && q.Closed() {
			return Stop
		}
		return Proceed
	}
}

// deliver commits one admitted batch to the output stream. On streams with
// write views (both built-in queue kinds) the batch is copied exactly once,
// straight into reserved ring storage; best-effort links keep the PushN
// path because its shed policy is the link's contract. A pooled buffer is
// recycled after delivery — together with the write view that makes the
// decode buffer the only intermediate the batch ever touches, counted in
// copiesSaved.
func (s *Source[T]) deliver(out *Port, b sourceBatch[T]) error {
	// Same-goroutine write: deliver and the push hook that reads
	// stampTenant both run on the kernel's goroutine.
	out.stampTenant = b.tenant
	err := s.push(out, b.vals)
	if b.pooled && err == nil {
		s.copiesSaved.Add(1)
		s.pool.Put(&b.vals)
	}
	return err
}

func (s *Source[T]) push(out *Port, vals []T) error {
	if len(vals) == 0 {
		return nil
	}
	if s.copyPush || !HasWriteViews[T](out) || isBestEffort(out) {
		return PushN[T](out, vals)
	}
	off := 0
	for off < len(vals) {
		wv, err := AcquireWriteView[T](out, len(vals)-off)
		if wv.Len() == 0 {
			if err == nil {
				err = ErrClosed
			}
			return err
		}
		n := wv.CopyIn(0, vals[off:], nil)
		ReleaseWriteView[T](out, n)
		off += n
	}
	return nil
}

// lease returns a zero-length decode buffer from the pool.
func (s *Source[T]) lease() []T {
	if bp, ok := s.pool.Get().(*[]T); ok {
		return (*bp)[:0]
	}
	return nil
}

// CopiesSaved reports how many admitted batches avoided the per-request
// intermediate allocation (pooled decode buffer + write-view delivery).
func (s *Source[T]) CopiesSaved() uint64 { return s.copiesSaved.Load() }

// SetCopyDelivery forces plain PushN delivery (no write views). This is
// the copy arm of the A15 ablation; zero-copy delivery is the default.
func (s *Source[T]) SetCopyDelivery(on bool) { s.copyPush = on }

// Finalize marks the kernel stopped, failing any inject still in flight.
func (s *Source[T]) Finalize() {
	s.stopOnce.Do(func() { close(s.stopped) })
}

// inject hands one admitted batch to the kernel and blocks until it is in
// the stream's FIFO (nil) or the source can no longer deliver it
// (ErrClosed / stream error — the gateway answers 503, the batch was NOT
// admitted).
func (s *Source[T]) inject(tenant string, vals []T, pooled bool) error {
	b := sourceBatch[T]{vals: vals, done: make(chan error, 1), pooled: pooled, tenant: tenant}
	select {
	case s.feed <- b:
	case <-s.intakeDone:
		return ErrClosed
	case <-s.stopped:
		return ErrClosed
	}
	select {
	case err := <-b.done:
		return err
	case <-s.stopped:
		// The kernel stopped while the batch waited. It may still have
		// been delivered by the drain loop racing this select — done is
		// buffered, so one final check settles which side of the
		// exactly-once line the batch landed on.
		select {
		case err := <-b.done:
			return err
		default:
			return ErrClosed
		}
	}
}

// BindSource registers a Source kernel with a gateway: dec parses one
// request payload into an element batch (its error becomes HTTP 400).
// Exe completes the binding with the engine-side wiring when the graph
// runs; until then the gateway answers 503 for this source.
func BindSource[T any](gw *gateway.Server, src *Source[T], dec func(payload []byte) ([]T, error)) error {
	if src.Name() == "" {
		return fmt.Errorf("raft: BindSource requires a named source")
	}
	return gw.Register(gateway.Binding{
		Name: src.Name(),
		Decode: func(payload []byte) (any, int, error) {
			vals, err := dec(payload)
			if err != nil {
				return nil, 0, err
			}
			return vals, len(vals), nil
		},
		Push: func(batch any) error {
			return src.inject("", batch.([]T), false)
		},
		PushTenant: func(tenant string, batch any) error {
			return src.inject(tenant, batch.([]T), false)
		},
		CloseIntake: src.CloseIntake,
		CopiesSaved: src.CopiesSaved,
	})
}

// BindSourceAppend registers a Source kernel with a gateway using a
// recycle-friendly decoder: dec receives a zero-length buffer leased from
// the source's pool and appends the decoded elements to it (growing it if
// needed), returning the filled slice. The source owns the returned slice —
// after the batch is committed to ring storage it goes back to the pool, so
// a steady ingest stream decodes without allocating a fresh intermediate
// slice per request. dec must not retain the slice (or any memory it
// returns) past the call.
func BindSourceAppend[T any](gw *gateway.Server, src *Source[T], dec func(payload []byte, buf []T) ([]T, error)) error {
	if src.Name() == "" {
		return fmt.Errorf("raft: BindSourceAppend requires a named source")
	}
	return gw.Register(gateway.Binding{
		Name: src.Name(),
		Decode: func(payload []byte) (any, int, error) {
			vals, err := dec(payload, src.lease())
			if err != nil {
				return nil, 0, err
			}
			return vals, len(vals), nil
		},
		Push: func(batch any) error {
			return src.inject("", batch.([]T), true)
		},
		PushTenant: func(tenant string, batch any) error {
			return src.inject(tenant, batch.([]T), true)
		},
		Recycle: func(batch any) {
			vs := batch.([]T)
			src.pool.Put(&vs)
		},
		CloseIntake: src.CloseIntake,
		CopiesSaved: src.CopiesSaved,
	})
}

// wireGateway completes every registered binding with closures over the
// engine state allocated for this run: the source's outbound link (the
// admission model's target), its telemetry drop counter, the online rate
// estimates when WithServiceRateControl is active, and the active replica
// width when the source feeds a replicated group's split.
func (m *Map) wireGateway(cfg *Config, linkInfos []*core.LinkInfo,
	scalers []*groupScaler, est *qmodel.Estimator, rec *trace.Recorder) error {

	gw := cfg.Gateway
	for _, name := range gw.Sources() {
		idx := -1
		for i, l := range m.links {
			if l.Src.kernelBase().Name() == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("raft: gateway source %q has no outbound link in this map", name)
		}
		l, li := m.links[idx], linkInfos[idx]
		tel := li.Queue.Telemetry()
		w := gateway.Wiring{
			Queue:      func() (int, int) { return li.Queue.Len(), li.Queue.Cap() },
			Dropped:    tel.Drops,
			Servers:    func() int { return 1 },
			BestEffort: li.BestEffort,
		}
		if est != nil {
			linkIdx := idx
			w.Rates = func() (lambda, mu, rho float64, ok bool) {
				r, ok := est.Link(linkIdx)
				if !ok || !r.Primed {
					return 0, 0, 0, false
				}
				return r.Lambda, r.Mu, r.Rho, true
			}
		}
		for _, sc := range scalers {
			if l.Dst.kernelBase() == sc.split.kernelBase() {
				w.Servers = sc.Active
				break
			}
		}
		if err := gw.Wire(name, w); err != nil {
			return err
		}
	}
	if rec != nil {
		gw.SetTrace(rec, -1)
	}
	if cfg.markers != nil {
		dom := cfg.markers.dom
		gw.SetLatency(func(tenant string) (time.Duration, bool) {
			return dom.TenantQuantile(tenant, 0.99)
		})
	}
	return nil
}

// GatewayReport summarizes ingestion-gateway activity for one run.
type GatewayReport struct {
	// Addr is the gateway's HTTP listen address.
	Addr string
	// Tenants holds per-tenant admission counters (sorted by name).
	Tenants []GatewayTenant
	// Sources holds per-source ingestion counters (sorted by name).
	Sources []GatewaySource
}

// GatewayTenant is one tenant's admission counters.
type GatewayTenant struct {
	Name            string
	AdmittedBatches uint64
	AdmittedElems   uint64
	// ShedQuota counts batches refused by the tenant's token bucket;
	// ShedModel counts batches refused by model-driven admission control
	// (occupancy, utilization or predicted-wait thresholds).
	ShedQuota uint64
	ShedModel uint64
	// E2EP99 is the tenant's observed end-to-end p99 latency from retired
	// provenance markers (0 until a marker of the tenant retires).
	E2EP99 time.Duration
}

// GatewaySource is one source's ingestion counters.
type GatewaySource struct {
	Name          string
	AdmittedElems uint64
	// Dropped is the source link's best-effort drop count (zero on
	// backpressure links).
	Dropped uint64
	// CopiesSaved counts admitted batches that avoided a per-request
	// intermediate copy (pooled decode buffer + write-view delivery).
	CopiesSaved uint64
}

func gatewayReport(gw *gateway.Server) *GatewayReport {
	st := gw.Stats()
	rep := &GatewayReport{Addr: gw.Addr()}
	for _, t := range st.Tenants {
		rep.Tenants = append(rep.Tenants, GatewayTenant{
			Name:            t.Name,
			AdmittedBatches: t.AdmittedBatches,
			AdmittedElems:   t.AdmittedElems,
			ShedQuota:       t.ShedQuota,
			ShedModel:       t.ShedModel,
			E2EP99:          time.Duration(t.E2EP99Ns),
		})
	}
	for _, s := range st.Sources {
		rep.Sources = append(rep.Sources, GatewaySource{
			Name:          s.Name,
			AdmittedElems: s.AdmittedElems,
			Dropped:       s.Dropped,
			CopiesSaved:   s.CopiesSaved,
		})
	}
	return rep
}
