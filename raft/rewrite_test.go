package raft

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"time"
)

// pacedCollect gathers int64s from port "in", sleeping briefly every few
// elements so the upstream stays busy (backpressured, hence pausable)
// long enough for a mid-run rewrite to land, without dragging the test
// out to timer-granularity-per-element wall clock.
type pacedCollect struct {
	KernelBase
	mu    chan struct{} // 1-slot mutex usable from values() too
	got   []int64
	pause time.Duration
	every int
}

func newPacedCollect(pause time.Duration) *pacedCollect {
	k := &pacedCollect{mu: make(chan struct{}, 1), pause: pause, every: 64}
	AddInput[int64](k, "in")
	return k
}

func (c *pacedCollect) Run() Status {
	v, err := Pop[int64](c.In("in"))
	if err != nil {
		return Stop
	}
	c.mu <- struct{}{}
	n := len(c.got) + 1
	c.got = append(c.got, v)
	<-c.mu
	if c.pause > 0 && c.every > 0 && n%c.every == 0 {
		time.Sleep(c.pause)
	}
	return Proceed
}

func (c *pacedCollect) count() int {
	c.mu <- struct{}{}
	n := len(c.got)
	<-c.mu
	return n
}

func (c *pacedCollect) values() []int64 {
	c.mu <- struct{}{}
	defer func() { <-c.mu }()
	return append([]int64(nil), c.got...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkSegments verifies got is a concatenation of contiguous segments
// where segment f maps index i to fns[f](i), in order, and returns the
// cut points. Used to prove a splice preserved FIFO order: everything
// before the epoch flows through the old structure, everything after
// through the new one, with no loss, duplication or interleaving.
func checkSegments(t *testing.T, got []int64, fns ...func(int64) int64) []int {
	t.Helper()
	var cuts []int
	f := 0
	for i, v := range got {
		for f < len(fns) && v != fns[f](int64(i)) {
			f++
			cuts = append(cuts, i)
		}
		if f == len(fns) {
			t.Fatalf("index %d: value %d fits no segment (cuts so far %v)", i, v, cuts)
		}
	}
	return cuts
}

// TestRewriteSpliceAndRemoveMidRun drives gen -> collect, splices a
// doubling kernel between them mid-run, later splices it back out, and
// requires the output to be exactly three clean segments: identity,
// doubled, identity — every element delivered exactly once, in order,
// across two graph epochs.
func TestRewriteSpliceAndRemoveMidRun(t *testing.T) {
	const n = 30_000
	m := NewMap()
	gen := newGen(n)
	sink := newPacedCollect(time.Millisecond)
	l0 := m.MustLink(gen, sink)

	ex, err := m.ExeAsync(WithDynamicResize(false))
	if err != nil {
		t.Fatal(err)
	}
	rw := ex.Rewriter()

	waitFor(t, "pre-splice traffic", func() bool { return sink.count() >= 500 })

	work := newWork()
	work.SetName("spliced-work")
	tx := rw.Begin()
	if err := tx.RemoveLink(l0); err != nil {
		t.Fatal(err)
	}
	l1, err := tx.Link(gen, work)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := tx.Link(work, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("splice-in commit: %v", err)
	}
	if got := rw.Epoch(); got != 1 {
		t.Fatalf("epoch after first commit = %d, want 1", got)
	}

	mark := sink.count()
	waitFor(t, "doubled traffic", func() bool { return sink.count() >= mark+2000 })

	tx = rw.Begin()
	for _, l := range []*Link{l1, l2} {
		if err := tx.RemoveLink(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.RemoveKernel(work); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Link(gen, sink); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("splice-out commit: %v", err)
	}
	if got := rw.Epoch(); got != 2 {
		t.Fatalf("epoch after second commit = %d, want 2", got)
	}

	rep, err := ex.Wait()
	if err != nil {
		t.Fatal(err)
	}
	got := sink.values()
	if len(got) != n {
		t.Fatalf("received %d values, want %d", len(got), n)
	}
	id := func(i int64) int64 { return i }
	dbl := func(i int64) int64 { return 2 * i }
	cuts := checkSegments(t, got, id, dbl, id)
	if len(cuts) != 2 || cuts[0] == 0 || cuts[1] <= cuts[0] {
		t.Fatalf("segment cuts = %v, want two cuts past the origin", cuts)
	}

	// The report must show the spliced kernel's lifecycle: it joined and
	// left mid-run, while the static kernels carry zero stamps.
	var sawWork bool
	for _, kr := range rep.Kernels {
		if strings.Contains(kr.Name, "spliced-work") {
			sawWork = true
			if kr.JoinedAt <= 0 || kr.LeftAt <= kr.JoinedAt {
				t.Fatalf("spliced kernel stamps: joined %v left %v", kr.JoinedAt, kr.LeftAt)
			}
		} else if kr.JoinedAt != 0 || kr.LeftAt != 0 {
			t.Fatalf("static kernel %q has lifecycle stamps %v/%v", kr.Name, kr.JoinedAt, kr.LeftAt)
		}
	}
	if !sawWork {
		t.Fatal("spliced kernel missing from report")
	}

	// The rendered report shows the lifecycle columns (static graphs keep
	// the stamp-free layout), and the departed kernel's row carries both
	// offsets rather than reading like a live zero-stamped row.
	s := rep.String()
	if !strings.Contains(s, "joined") || !strings.Contains(s, "left") {
		t.Fatal("rendered report lacks lifecycle columns after a rewrite")
	}
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimLeft(line, " "), "spliced-work ") && !strings.Contains(line, "+") {
			t.Fatalf("departed kernel row lacks lifecycle stamps: %q", line)
		}
	}
}

// TestRewriteUnderWorkStealing repeats the mid-run splice on the sharded
// work-stealing scheduler: the spliced kernel must be spawned into the
// running shard set and the splice must stay exactly-once.
func TestRewriteUnderWorkStealing(t *testing.T) {
	const n = 20_000
	m := NewMap()
	gen := newGen(n)
	sink := newPacedCollect(time.Millisecond)
	l0 := m.MustLink(gen, sink)

	ex, err := m.ExeAsync(WithWorkStealing(4), WithDynamicResize(false))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-splice traffic", func() bool { return sink.count() >= 500 })

	work := newWork()
	tx := ex.Rewriter().Begin()
	if err := tx.RemoveLink(l0); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Link(gen, work); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Link(work, sink); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit under work stealing: %v", err)
	}

	rep, err := ex.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sched == nil {
		t.Fatal("work-stealing run produced no scheduler report")
	}
	got := sink.values()
	if len(got) != n {
		t.Fatalf("received %d values, want %d", len(got), n)
	}
	id := func(i int64) int64 { return i }
	dbl := func(i int64) int64 { return 2 * i }
	cuts := checkSegments(t, got, id, dbl)
	if len(cuts) != 1 || cuts[0] == 0 {
		t.Fatalf("segment cuts = %v, want one cut past the origin", cuts)
	}
}

// bombDoubler doubles elements and panics once, before popping, after a
// set number of successful invocations — the processed count survives via
// checkpoints, the armed flag deliberately does not, so a supervised
// restart resumes exactly where the panic struck with nothing lost or
// repeated.
type bombDoubler struct {
	KernelBase
	processed int64
	bombAt    int64
	armed     bool
}

func newBombDoubler(bombAt int64) *bombDoubler {
	k := &bombDoubler{bombAt: bombAt, armed: true}
	k.SetName("bomb")
	AddInput[int64](k, "in")
	AddOutput[int64](k, "out")
	return k
}

func (d *bombDoubler) Run() Status {
	if d.armed && d.processed == d.bombAt {
		d.armed = false
		panic("injected fault in spliced kernel")
	}
	v, err := Pop[int64](d.In("in"))
	if err != nil {
		return Stop
	}
	if err := Push(d.Out("out"), 2*v); err != nil {
		return Stop
	}
	d.processed++
	return Proceed
}

func (d *bombDoubler) Snapshot() ([]byte, error) {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(d.processed))
	return b, nil
}

func (d *bombDoubler) Restore(snap []byte) error {
	if len(snap) != 8 {
		return errors.New("bad snapshot")
	}
	d.processed = int64(binary.LittleEndian.Uint64(snap))
	return nil
}

// TestRewriteSplicedKernelSupervised splices a checkpointable kernel with
// a live restart budget into a supervised run and lets it blow up: the
// supervisor must restart the dynamically spawned kernel in place
// (restoring its checkpoint) and the end-to-end stream must stay
// exactly-once across both the splice and the recovery.
func TestRewriteSplicedKernelSupervised(t *testing.T) {
	const n = 15_000
	m := NewMap()
	gen := newGen(n)
	sink := newPacedCollect(time.Millisecond)
	l0 := m.MustLink(gen, sink)

	ex, err := m.ExeAsync(
		WithSupervision(SupervisionPolicy{InitialBackoff: time.Microsecond}),
		WithCheckpointStore(NewMemCheckpointStore()),
		WithDynamicResize(false),
	)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pre-splice traffic", func() bool { return sink.count() >= 300 })

	bomb := newBombDoubler(50)
	tx := ex.Rewriter().Begin()
	if err := tx.RemoveLink(l0); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Link(gen, bomb); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Link(bomb, sink); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	rep, err := ex.Wait()
	if err != nil {
		t.Fatal(err)
	}
	got := sink.values()
	if len(got) != n {
		t.Fatalf("received %d values, want %d", len(got), n)
	}
	id := func(i int64) int64 { return i }
	dbl := func(i int64) int64 { return 2 * i }
	checkSegments(t, got, id, dbl)

	var restarts uint64
	for _, kr := range rep.Kernels {
		if strings.Contains(kr.Name, "bomb") {
			restarts = kr.Restarts
		}
	}
	if restarts == 0 {
		t.Fatal("spliced kernel shows no supervised restarts")
	}
	if len(rep.Recoveries) == 0 {
		t.Fatal("report carries no recovery events")
	}
}

// TestRewriteValidation exercises the transaction validator's refusals
// against a live run — every rejected transaction must leave the running
// graph untouched.
func TestRewriteValidation(t *testing.T) {
	const n = 5_000
	m := NewMap()
	gen := newGen(n)
	sink := newPacedCollect(time.Millisecond)
	l0 := m.MustLink(gen, sink)

	other := NewMap()
	foreign := other.MustLink(newGen(10), newCollect())

	ex, err := m.ExeAsync()
	if err != nil {
		t.Fatal(err)
	}
	rw := ex.Rewriter()
	waitFor(t, "traffic", func() bool { return sink.count() >= 100 })

	// Busy port: gen's only output is bound and no removal frees it.
	tx := rw.Begin()
	if _, err := tx.Link(gen, newCollect()); err == nil {
		if err := tx.Commit(); err == nil {
			t.Fatal("linking a busy port committed")
		}
	}

	// Kernel removal without removing its links.
	tx = rw.Begin()
	if err := tx.RemoveKernel(gen); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("removing a kernel with live links committed")
	}

	// Foreign link: belongs to a map that never executed.
	tx = rw.Begin()
	if err := tx.RemoveLink(foreign); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("removing a foreign link committed")
	}

	// Dangling addition: a new kernel whose input is never linked.
	tx = rw.Begin()
	if err := tx.RemoveLink(l0); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Link(gen, newWork()); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("transaction with an unbound surviving port committed")
	}

	// Double commit.
	tx = rw.Begin()
	if err := tx.Commit(); err != nil { // empty transaction is a no-op
		t.Fatalf("empty commit: %v", err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("second commit of one transaction succeeded")
	}

	if got := rw.Epoch(); got != 0 {
		t.Fatalf("failed transactions advanced the epoch to %d", got)
	}

	if _, err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	got := sink.values()
	if len(got) != n {
		t.Fatalf("received %d values, want %d", len(got), n)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("index %d: value %d after rejected transactions", i, v)
		}
	}

	// The execution is complete: new transactions must refuse to commit.
	tx = rw.Begin()
	a, b := newGen(5), newCollect()
	if _, err := tx.Link(a, b); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit after execution completion succeeded")
	}
}

// TestRewriteRejectsRigidKernels: members of an auto-replicated group are
// load-balanced by the runtime's own split/merge adapters; splicing user
// structure onto them would break the ordered-merge invariants, so the
// validator refuses.
func TestRewriteRejectsRigidKernels(t *testing.T) {
	const n = 20_000
	m := NewMap()
	gen := newGen(n)
	work := newWork()
	sink := newPacedCollect(time.Millisecond)
	m.MustLink(gen, work)
	m.MustLink(work, sink)

	ex, err := m.ExeAsync(WithAutoReplicate(3))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "traffic", func() bool { return sink.count() >= 100 })

	tx := ex.Rewriter().Begin()
	_, linkErr := tx.Link(work, newCollect())
	if linkErr == nil {
		if err := tx.Commit(); err == nil {
			t.Fatal("linking a replicated-group member committed")
		}
	}

	if _, err := ex.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := sink.count(); got != n {
		t.Fatalf("received %d values, want %d", got, n)
	}
}
