GO ?= go

# CI_SEED de-correlates benchmark flakes across CI runs (the workflow sets
# it from the run number); locally it defaults to 0 = the canonical seeds.
CI_SEED ?= 0

.PHONY: build test check bench bench-smoke ci ci-vet ci-fmt ci-test ci-race ci-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the fast pre-commit gate: vet everything, race-test the
# packages with the trickiest concurrency (resilience supervisor, oar
# bridge healing, lock-free ring buffer, batched port path, sharded
# trace bus, monitor, histogram counters), then smoke the batch
# ablation so a batching regression fails loudly.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/resilience/... ./internal/oar/... ./internal/ringbuffer/... ./internal/trace/... ./internal/monitor/... ./internal/stats/... ./raft/...
	$(MAKE) bench-smoke

# bench-smoke runs the batch ablation on a small corpus/stream — seconds,
# not minutes — verifying the bulk path end to end (byte-identical results
# and the batched >= 2x acceptance check are asserted inside the ablation).
bench-smoke:
	$(GO) run ./cmd/raft-bench -ablate batch -corpus 1 -items 500000

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# ci runs exactly what .github/workflows/ci.yml runs, as one local command.
# The workflow jobs invoke the ci-* sub-targets below so the two can never
# drift: editing a step here edits it for CI too.
ci: ci-vet ci-fmt ci-test ci-race ci-smoke

ci-vet:
	$(GO) vet ./...

# gofmt -l prints nothing when the tree is clean; any output fails the gate.
ci-fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci-test:
	$(GO) test ./...

# Same package list as `check`: the packages with real concurrency.
ci-race:
	$(GO) test -race ./internal/resilience/... ./internal/oar/... ./internal/ringbuffer/... ./internal/trace/... ./internal/monitor/... ./internal/stats/... ./raft/...

# Bench smoke for CI: correctness is always asserted; perf bars downgrade
# to warnings on small runners (auto-detected via GOMAXPROCS < 2). -seed
# varies per run so a conclusion that only holds for one seed gets caught.
ci-smoke:
	$(GO) run ./cmd/raft-bench -ablate batch -corpus 1 -items 500000 -seed $(CI_SEED)
	$(GO) run ./cmd/raft-bench -ablate rate -items 2000000 -seed $(CI_SEED)
