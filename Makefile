GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the fast pre-commit gate: vet everything, then race-test the
# packages with the trickiest concurrency (resilience supervisor, oar
# bridge healing, lock-free ring buffer).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/resilience/... ./internal/oar/... ./internal/ringbuffer/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
