GO ?= go

.PHONY: build test check bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the fast pre-commit gate: vet everything, race-test the
# packages with the trickiest concurrency (resilience supervisor, oar
# bridge healing, lock-free ring buffer, batched port path, sharded
# trace bus, monitor, histogram counters), then smoke the batch
# ablation so a batching regression fails loudly.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/resilience/... ./internal/oar/... ./internal/ringbuffer/... ./internal/trace/... ./internal/monitor/... ./internal/stats/... ./raft/...
	$(MAKE) bench-smoke

# bench-smoke runs the batch ablation on a small corpus/stream — seconds,
# not minutes — verifying the bulk path end to end (byte-identical results
# and the batched >= 2x acceptance check are asserted inside the ablation).
bench-smoke:
	$(GO) run ./cmd/raft-bench -ablate batch -corpus 1 -items 500000

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
