GO ?= go

# CI_SEED de-correlates benchmark flakes across CI runs (the workflow sets
# it from the run number); locally it defaults to 0 = the canonical seeds.
CI_SEED ?= 0

# FUZZTIME is the budget for the epoch-swap fuzz target (the newest,
# least-soaked concurrency protocol); FUZZTIME_SHORT for the established
# ringbuffer targets that mostly re-verify their corpora.
FUZZTIME ?= 60s
FUZZTIME_SHORT ?= 15s

.PHONY: build test check bench bench-smoke ci ci-vet ci-fmt ci-lint ci-test ci-race ci-fuzz ci-smoke ci-gateway ci-view ci-obs ci-sched ci-graph ci-nightly-bars

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the fast pre-commit gate: vet everything, race-test the
# packages with the trickiest concurrency (resilience supervisor, oar
# bridge healing, lock-free ring buffer, batched port path, sharded
# trace bus, monitor, histogram counters), then smoke the batch
# ablation so a batching regression fails loudly.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/resilience/... ./internal/oar/... ./internal/ringbuffer/... ./internal/trace/... ./internal/monitor/... ./internal/stats/... ./internal/gateway/... ./raft/...
	$(MAKE) bench-smoke

# bench-smoke runs the batch ablation on a small corpus/stream — seconds,
# not minutes — verifying the bulk path end to end (byte-identical results
# and the batched >= 2x acceptance check are asserted inside the ablation).
bench-smoke:
	$(GO) run ./cmd/raft-bench -ablate batch -corpus 1 -items 500000

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# ci runs exactly what .github/workflows/ci.yml runs, as one local command.
# The workflow jobs invoke the ci-* sub-targets below so the two can never
# drift: editing a step here edits it for CI too.
ci: ci-vet ci-fmt ci-lint ci-test ci-race ci-fuzz ci-smoke ci-gateway ci-view ci-obs ci-sched ci-graph

ci-vet:
	$(GO) vet ./...

# Static analysis and vulnerability scan. The tools are optional locally
# (skipped with a notice when not installed, so `make ci` works on a bare
# toolchain); the workflow's lint job installs both, so the gate is always
# enforced in CI. Install locally with:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
#   go install golang.org/x/vuln/cmd/govulncheck@latest
ci-lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else echo "ci-lint: staticcheck not installed — skipping locally (enforced in CI)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else echo "ci-lint: govulncheck not installed — skipping locally (enforced in CI)"; fi

# gofmt -l prints nothing when the tree is clean; any output fails the gate.
ci-fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

ci-test:
	$(GO) test ./...

# Same package list as `check`: the packages with real concurrency. The
# ringbuffer package runs three times — the epoch-swap protocol's races
# are interleaving-dependent, and repeated runs shake out schedules a
# single pass misses.
ci-race:
	$(GO) test -race ./internal/resilience/... ./internal/oar/... ./internal/trace/... ./internal/monitor/... ./internal/stats/... ./raft/...
	$(GO) test -race -count=3 ./internal/ringbuffer/...

# Short-budget coverage-guided fuzzing of the lock-free ring: the
# epoch-swap target gets the full budget, the established model-based
# targets a shorter one. Each -fuzz run must name exactly one target.
ci-fuzz:
	$(GO) test ./internal/ringbuffer/ -run='^$$' -fuzz='^FuzzSPSCResize$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/ringbuffer/ -run='^$$' -fuzz='^FuzzViewResize$$' -fuzztime=$(FUZZTIME)
	@for t in FuzzSPSCModelResize FuzzViewModelResize FuzzRingAgainstModel FuzzRingBulkAgainstModel FuzzRingBulkConcurrentResize; do \
		echo "$(GO) test ./internal/ringbuffer/ -run='^$$' -fuzz=^$$t\$$ -fuzztime=$(FUZZTIME_SHORT)"; \
		$(GO) test ./internal/ringbuffer/ -run='^$$' -fuzz="^$$t\$$" -fuzztime=$(FUZZTIME_SHORT) || exit 1; \
	done
	$(GO) test ./internal/scheduler/ -run='^$$' -fuzz='^FuzzStealDeque$$' -fuzztime=$(FUZZTIME_SHORT)
	$(GO) test ./raft/ -run='^$$' -fuzz='^FuzzGraphRewrite$$' -fuzztime=$(FUZZTIME_SHORT)

# Bench smoke for CI: correctness is always asserted; perf bars downgrade
# to warnings on small runners (auto-detected via GOMAXPROCS < 2). -seed
# varies per run so a conclusion that only holds for one seed gets caught.
ci-smoke:
	$(GO) run ./cmd/raft-bench -ablate batch -corpus 1 -items 500000 -seed $(CI_SEED)
	$(GO) run ./cmd/raft-bench -ablate rate -items 2000000 -seed $(CI_SEED)

# Gateway gate: race-test the admission front door (token buckets, the
# source-kernel handoff, the HTTP/framed servers are all concurrent by
# construction), then run the A14 ablation as a seeded smoke — the
# shed-before-saturation and best-effort bars assert on every run, and
# the isolation bar enforces on multi-core hosts.
ci-gateway:
	$(GO) test -race ./internal/gateway/...
	$(GO) test -race -run 'Gateway' ./raft/
	$(GO) run ./cmd/raft-bench -ablate gateway -seed $(CI_SEED)

# View gate: the borrow/release protocol spans both ring kinds and the
# epoch-swap resize, so the ringbuffer package gets three racing passes;
# then the A15 ablation runs as a seeded smoke — chaos exactness and the
# gateway copies-saved bars assert on every run, and the 1.5x speedup
# bar enforces on multi-core hosts.
ci-view:
	$(GO) test -race -count=3 ./internal/ringbuffer/...
	$(GO) test -race -run 'View|Batch|Pooled|Alloc' ./internal/oar/ ./internal/monitor/ ./kernels/ ./raft/
	$(GO) run ./cmd/raft-bench -ablate view -seed $(CI_SEED)

# Observability gate: race-test the latency-marker path end to end —
# the marker lane/domain and timeline in internal/trace, the raft-level
# marker/healthz integration tests, and the bridge sidecar — with three
# passes, since marker handoff between ports, lanes and carriers is
# interleaving-dependent; then run the A16 ablation as a seeded smoke.
# Marker exactness, attribution, the flight dump and the bridge-sidecar
# checks assert on every run; the 3% overhead bar warns on small runners
# and is enforced by the nightly perf-bars job.
ci-obs:
	$(GO) test -race -count=3 ./internal/trace/...
	$(GO) test -race -count=3 -run 'Marker|Latency|Flight|Healthz|Timeline' ./raft/ ./internal/oar/
	$(GO) run ./cmd/raft-bench -ablate latency -items 500000 -seed $(CI_SEED)

# Scheduler gate: race-test the work-stealing scheduler and the actor
# core with three passes — deque steals, park/wake hook delivery and the
# watchdog are all interleaving-dependent — then run the A17 scale
# ablation as a seeded smoke. Element exactness and park/wake counter
# visibility assert on every run; the 1.05x scale-ratio bars warn on
# small runners and are enforced by the nightly perf-bars job.
ci-sched:
	$(GO) test -race -count=3 ./internal/scheduler/... ./internal/core/...
	$(GO) run ./cmd/raft-bench -ablate sched -corpus 4 -seed $(CI_SEED)

# Graph-rewrite gate: race-test the rewrite transaction protocol and the
# subgraph-template lifecycle with three passes — gate-pause sequencing,
# drain/retire ordering and template reap/restore are all interleaving-
# dependent — plus the chaos mid-run-splice integration test, then run
# the A18 ablation as a seeded smoke. Element exactness across epochs
# asserts on every run; the splice-pause and untouched-throughput bars
# warn on small runners and are enforced by the nightly perf-bars job.
ci-graph:
	$(GO) test -race -count=3 -run 'Rewrite|Template' ./raft/
	$(GO) test -race -run 'ChaosTextsearchExactAcrossMidRunSplice' .
	$(GO) run ./cmd/raft-bench -ablate graph -items 500000 -seed $(CI_SEED)

# The nightly perf gate: the A5 (monitoring overhead), A11 (batching
# speedup), A12 (telemetry overhead), A13 (controller parity/latency/
# overhead), A14 (gateway admission/isolation), A15 (zero-copy view
# speedup), A16 (latency-marker overhead), A17 (work-stealing scheduler
# scale) and A18 (graph-rewrite pause/isolation) bars, *enforced* —
# -enforce-bars refuses the small-runner downgrade, so a missed bar
# fails the job. Runs only on the pinned multi-core runner (see the
# perf-bars job in .github/workflows/ci.yml); PR-time bench-smoke stays
# advisory.
ci-nightly-bars:
	$(GO) run ./cmd/raft-bench -ablate monitor,batch,obs,rate,gateway,view,latency,sched,graph -corpus 16 -seed $(CI_SEED) -enforce-bars
